"""Telemetry: tracing spans, a metrics registry, and live sweep progress.

A dependency-free observability layer the whole sweep/engine stack records
into — the read-side foundation for the long-running sweep service and the
cross-sweep analytics warehouse (ROADMAP items 1, 4, 5):

* :mod:`repro.telemetry.tracing` — hierarchical spans
  (``sweep > sweep.execute > trial > engine.*``) via contextvars; opt-in
  (no-op until :func:`start_trace`), multiprocessing-safe (workers buffer
  with :func:`worker_trace` and the parent merges via
  :meth:`Tracer.adopt`), exported and validated as JSONL;
* :mod:`repro.telemetry.metrics` — an always-on process-local registry of
  counters / gauges / histograms with typed snapshots, deltas and worker
  merge, folded into :class:`~repro.experiments.runner.SweepStats`;
* :mod:`repro.telemetry.progress` — throttled heartbeat events for
  :func:`~repro.experiments.runner.run_sweep`'s ``progress`` callback and
  the CLI ``--progress`` mode;
* :mod:`repro.telemetry.summary` — the span-tree / per-stage / slowest-trial
  report behind ``repro trace``.

Quick start::

    from repro.telemetry import start_trace, write_trace
    from repro.experiments import get_scenario, run_sweep

    with start_trace() as tracer:
        result = run_sweep(get_scenario("platform-energy").spec)
    write_trace("trace.jsonl", tracer.records)   # inspect: repro trace trace.jsonl
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    flatten_snapshot,
    gauge,
    histogram,
    registry,
    snapshot_delta,
)
from repro.telemetry.progress import (
    ProgressEvent,
    ProgressReporter,
    progress_printer,
    render_progress,
)
from repro.telemetry.tracing import (
    SpanRecord,
    Tracer,
    current_tracer,
    read_trace,
    span,
    start_trace,
    tracing_active,
    validate_trace,
    worker_trace,
    write_trace,
)

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "start_trace",
    "worker_trace",
    "current_tracer",
    "tracing_active",
    "write_trace",
    "read_trace",
    "validate_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot_delta",
    "flatten_snapshot",
    "ProgressEvent",
    "ProgressReporter",
    "render_progress",
    "progress_printer",
]
