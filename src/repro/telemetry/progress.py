"""Live sweep progress: heartbeat events, throttling, and a text renderer.

:func:`repro.experiments.runner.run_sweep` accepts a ``progress`` callback
and drives it through a :class:`ProgressReporter`: the first event (right
after the cache scan) and the final event always fire; in between, events
are throttled to ``min_interval_s`` so a million-trial sweep never spends
its time formatting heartbeats.  Each :class:`ProgressEvent` carries the
numbers a poller needs — completed/total, executed vs cache hits, rate and
ETA — and is a frozen value object, safe to ship over a queue or serialise
for the future sweep service's poll/stream endpoint (ROADMAP item 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, TextIO

__all__ = ["ProgressEvent", "ProgressReporter", "render_progress", "progress_printer"]


@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat of a running sweep."""

    completed: int
    total: int
    executed: int
    cache_hits: int
    elapsed_s: float
    #: ``True`` exactly once, on the event emitted after the last trial.
    final: bool = False

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0

    @property
    def trials_per_second(self) -> float:
        """Execution rate (cache hits are free, so only executed trials count)."""
        return self.executed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.completed if self.completed else 0.0

    @property
    def eta_s(self) -> float | None:
        """Seconds to completion at the current rate; ``None`` before a rate exists."""
        remaining = self.total - self.completed
        if remaining <= 0:
            return 0.0
        rate = self.trials_per_second
        return remaining / rate if rate > 0 else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "completed": self.completed,
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "elapsed_s": self.elapsed_s,
            "trials_per_second": self.trials_per_second,
            "cache_hit_rate": self.cache_hit_rate,
            "eta_s": self.eta_s,
            "final": self.final,
        }


class ProgressReporter:
    """Throttled delivery of :class:`ProgressEvent` heartbeats to a callback.

    The first and final events always fire (so a sweep that is instantly
    cache-complete still reports once); intermediate events are dropped
    unless ``min_interval_s`` has passed since the last delivery.
    """

    def __init__(
        self,
        callback: Callable[[ProgressEvent], None],
        total: int,
        min_interval_s: float = 0.0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._callback = callback
        self._total = total
        self._min_interval_s = min_interval_s
        self._clock = clock
        self._started = clock()
        self._last_emit: float | None = None

    def update(
        self, completed: int, executed: int, cache_hits: int, final: bool = False
    ) -> ProgressEvent | None:
        """Deliver a heartbeat (unless throttled); returns the event if sent."""
        now = self._clock()
        if (
            not final
            and self._last_emit is not None
            and now - self._last_emit < self._min_interval_s
            and completed < self._total
        ):
            return None
        event = ProgressEvent(
            completed=completed,
            total=self._total,
            executed=executed,
            cache_hits=cache_hits,
            elapsed_s=now - self._started,
            final=final,
        )
        self._last_emit = now
        self._callback(event)
        return event


def _format_duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render_progress(event: ProgressEvent) -> str:
    """One human-readable heartbeat line."""
    parts = [
        f"progress: {event.completed}/{event.total} ({event.fraction:.0%})",
        f"{event.trials_per_second:.1f} trials/s",
        f"cache {event.cache_hit_rate:.0%}",
    ]
    if event.final:
        parts.append(f"done in {_format_duration(event.elapsed_s)}")
    elif event.eta_s is not None:
        parts.append(f"eta {_format_duration(event.eta_s)}")
    return "  ".join(parts)


def progress_printer(stream: TextIO) -> Callable[[ProgressEvent], None]:
    """A callback that prints rendered heartbeat lines to ``stream``."""

    def _print(event: ProgressEvent) -> None:
        print(render_progress(event), file=stream, flush=True)

    return _print
