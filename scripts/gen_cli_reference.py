#!/usr/bin/env python
"""Generate ``docs/cli.md`` from the live argparse tree.

The reference is the ``--help`` output of ``repro`` and every subcommand,
rendered at a pinned width so the file is byte-for-byte reproducible, plus
the sweep service's HTTP endpoint table lifted from
:mod:`repro.service.app`'s docstring.

Usage::

    python scripts/gen_cli_reference.py            # rewrite docs/cli.md
    python scripts/gen_cli_reference.py --check    # exit 1 if docs/cli.md is stale

CI runs ``--check`` so the committed reference can never drift from the
parser: change a flag, re-run the generator, commit both.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

#: Pinned terminal width: argparse consults the COLUMNS env var, so setting
#: it before any help text is formatted makes the output deterministic.
WIDTH = 100

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "docs" / "cli.md"

HEADER = """\
# CLI reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with:  python scripts/gen_cli_reference.py
     CI diffs this file against the parser (scripts/gen_cli_reference.py --check). -->

Every command is available both as the installed console script
(`repro ...`) and without installing (`PYTHONPATH=src python -m repro ...`).
See [tutorial.md](tutorial.md) for a worked session and
[architecture.md](architecture.md) for where each command sits in the stack.
"""


def _subcommands(parser: argparse.ArgumentParser) -> dict[str, argparse.ArgumentParser]:
    """The subcommand name -> subparser mapping of ``parser``."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise SystemExit("error: the repro parser has no subcommands to document")


def _http_api_section() -> str:
    """The service endpoint block, lifted verbatim from the app docstring."""
    import repro.service.app as app

    doc = app.__doc__ or ""
    lines = [line[4:] for line in doc.splitlines() if line.startswith("    ")]
    if not lines:
        raise SystemExit("error: repro.service.app docstring lost its endpoint table")
    block = "\n".join(lines).rstrip()
    return (
        "## HTTP API\n\n"
        "`repro serve` exposes a JSON API (all endpoints under `/api/v1`):\n\n"
        f"```\n{block}\n```\n\n"
        "Error mapping and server details: the `repro.service.app` module\n"
        "docstring is the authoritative source (this block is generated from it).\n"
    )


def generate() -> str:
    """Render the full reference document."""
    from repro.cli import build_parser

    parser = build_parser()
    sections = [HEADER]
    sections.append(f"## repro\n\n```\n{parser.format_help().rstrip()}\n```\n")
    for name, sub in _subcommands(parser).items():
        sections.append(f"## repro {name}\n\n```\n{sub.format_help().rstrip()}\n```\n")
    sections.append(_http_api_section())
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    os.environ["COLUMNS"] = str(WIDTH)
    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "--check", action="store_true",
        help="verify docs/cli.md matches the parser instead of rewriting it",
    )
    args = cli.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    document = generate()

    if args.check:
        committed = OUTPUT.read_text() if OUTPUT.exists() else ""
        if committed != document:
            print(
                "docs/cli.md is out of date with the argparse tree.\n"
                "Regenerate it and commit the result:\n"
                "    python scripts/gen_cli_reference.py",
                file=sys.stderr,
            )
            return 1
        print("docs/cli.md is up to date")
        return 0

    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(document)
    print(f"wrote {OUTPUT.relative_to(REPO_ROOT)} ({len(document.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
