#!/usr/bin/env python
"""Check that every relative markdown link in the docs resolves.

Scans ``docs/*.md`` plus the top-level ``README.md``, ``ROADMAP.md`` and
``CONTRIBUTING.md`` for inline links (``[text](target)``).  External links
(``http(s)://``, ``mailto:``) are skipped; everything else must point at an
existing file or directory, and fragment targets (``file.md#section`` or
``#section``) must match a heading in the target file under GitHub's
anchor-slug rules.

Usage::

    python scripts/check_docs_links.py

Exits non-zero listing every broken link (CI runs this in the docs job).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links; images share the syntax and are checked the same way.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub's heading -> anchor rule: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """Every anchor a markdown file exposes (its headings, slugified)."""
    text = CODE_FENCE.sub("", path.read_text())
    return {slugify(match.group(1)) for match in HEADING.finditer(text)}


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file (empty = clean)."""
    problems = []
    text = CODE_FENCE.sub("", path.read_text())
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw_path, _, fragment = target.partition("#")
        resolved = path if not raw_path else (path.parent / raw_path).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link {target!r}")
            continue
        if fragment and resolved.suffix == ".md":
            if slugify(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: link {target!r} points at a "
                    f"heading that does not exist in {resolved.name}"
                )
    return problems


def main() -> int:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    files += [
        REPO_ROOT / name
        for name in ("README.md", "ROADMAP.md", "CONTRIBUTING.md")
        if (REPO_ROOT / name).exists()
    ]
    problems = [problem for path in files for problem in check_file(path)]
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
