"""Unit tests for repro.utils.units."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import units


class TestDbConversions:
    def test_amplitude_roundtrip(self):
        assert units.db_to_linear(20.0) == pytest.approx(10.0)
        assert units.linear_to_db(10.0) == pytest.approx(20.0)

    def test_power_roundtrip(self):
        assert units.db_to_power_ratio(10.0) == pytest.approx(10.0)
        assert units.power_ratio_to_db(100.0) == pytest.approx(20.0)

    def test_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)
        assert units.db_to_power_ratio(0.0) == pytest.approx(1.0)

    def test_rejects_non_positive_ratios(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.power_ratio_to_db(-1.0)

    @given(st.floats(min_value=-100, max_value=100))
    def test_power_db_roundtrip_property(self, db):
        assert units.power_ratio_to_db(units.db_to_power_ratio(db)) == pytest.approx(db, abs=1e-9)

    @given(st.floats(min_value=-100, max_value=100))
    def test_amplitude_db_roundtrip_property(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db, abs=1e-9)


class TestScaleConversions:
    def test_energy(self):
        assert units.joules_to_microjoules(1e-6) == pytest.approx(1.0)
        assert units.microjoules_to_joules(9.5) == pytest.approx(9.5e-6)

    def test_time(self):
        assert units.seconds_to_microseconds(3.95e-6) == pytest.approx(3.95)
        assert units.microseconds_to_seconds(442.8) == pytest.approx(442.8e-6)
        assert units.seconds_to_milliseconds(0.0224) == pytest.approx(22.4)
        assert units.milliseconds_to_seconds(11.2) == pytest.approx(0.0112)

    def test_power(self):
        assert units.watts_to_milliwatts(0.335) == pytest.approx(335.0)
        assert units.milliwatts_to_watts(50.0) == pytest.approx(0.05)

    def test_frequency(self):
        assert units.hz_to_mhz(62.75e6) == pytest.approx(62.75)
        assert units.mhz_to_hz(225.0) == pytest.approx(225e6)
        assert units.hz_to_khz(24_000.0) == pytest.approx(24.0)
        assert units.khz_to_hz(5.0) == pytest.approx(5000.0)

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_roundtrips_property(self, value):
        assert units.microjoules_to_joules(units.joules_to_microjoules(value)) == pytest.approx(value)
        assert units.microseconds_to_seconds(units.seconds_to_microseconds(value)) == pytest.approx(value)
        assert units.mhz_to_hz(units.hz_to_mhz(value)) == pytest.approx(value)


class TestFormatSi:
    def test_typical_paper_quantities(self):
        assert units.format_si(3.95e-6, "s") == "3.95 us"
        assert units.format_si(9.5e-6, "J") == "9.5 uJ"
        assert units.format_si(62.75e6, "Hz") == "62.8 MHz"

    def test_zero_and_nonfinite(self):
        assert units.format_si(0.0, "W") == "0 W"
        assert "inf" in units.format_si(math.inf, "W")

    def test_small_values_use_pico(self):
        assert units.format_si(2.3e-12, "F").endswith("pF")

    def test_negative_values_keep_sign(self):
        assert units.format_si(-11.2e-3, "s").startswith("-11.2")
