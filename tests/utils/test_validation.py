"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_one_of,
    check_positive,
    check_power_of_two,
    check_probability,
    ensure_1d_array,
    ensure_2d_array,
)


class TestCheckPositive:
    def test_accepts_positive_int_and_float(self):
        assert check_positive("x", 3) == 3.0
        assert check_positive("x", 0.5) == 0.5

    def test_accepts_numpy_scalars(self):
        assert check_positive("x", np.float64(2.5)) == 2.5
        assert check_positive("x", np.int32(4)) == 4.0

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", -1.5)

    def test_rejects_non_numbers_and_bools(self):
        with pytest.raises(TypeError):
            check_positive("x", "3")
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("inf"))
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("nan"))


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, 2])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 5, 5, 10) == 5.0
        assert check_in_range("x", 10, 5, 10) == 10.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 5, 5, 10, inclusive=False)

    def test_only_lower_bound(self):
        assert check_in_range("x", 100, lower=0) == 100.0
        with pytest.raises(ValueError):
            check_in_range("x", -1, lower=0)

    def test_only_upper_bound(self):
        assert check_in_range("x", -5, upper=0) == -5.0
        with pytest.raises(ValueError):
            check_in_range("x", 1, upper=0)


class TestCheckInteger:
    def test_accepts_python_and_numpy_ints(self):
        assert check_integer("n", 7) == 7
        assert check_integer("n", np.int64(7)) == 7

    def test_rejects_floats_and_bools(self):
        with pytest.raises(TypeError):
            check_integer("n", 7.0)
        with pytest.raises(TypeError):
            check_integer("n", True)

    def test_bounds(self):
        assert check_integer("n", 5, minimum=5, maximum=5) == 5
        with pytest.raises(ValueError):
            check_integer("n", 4, minimum=5)
        with pytest.raises(ValueError):
            check_integer("n", 6, maximum=5)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 128])
    def test_accepts_powers(self, value):
        assert check_power_of_two("n", value) == value

    @pytest.mark.parametrize("value", [0, 3, 6, 12, 100])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValueError):
            check_power_of_two("n", value)


class TestCheckOneOf:
    def test_accepts_member(self):
        assert check_one_of("mode", "a", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="must be one of"):
            check_one_of("mode", "c", ("a", "b"))


class TestEnsureArrays:
    def test_1d_from_list(self):
        arr = ensure_1d_array("x", [1, 2, 3], dtype=np.float64)
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]

    def test_1d_length_check(self):
        with pytest.raises(ValueError, match="length 4"):
            ensure_1d_array("x", [1, 2, 3], length=4)

    def test_1d_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            ensure_1d_array("x", [[1, 2], [3, 4]])

    def test_2d_shape_check(self):
        arr = ensure_2d_array("m", [[1, 2], [3, 4]], shape=(2, 2))
        assert arr.shape == (2, 2)
        with pytest.raises(ValueError, match="rows"):
            ensure_2d_array("m", [[1, 2], [3, 4]], shape=(3, None))
        with pytest.raises(ValueError, match="columns"):
            ensure_2d_array("m", [[1, 2], [3, 4]], shape=(None, 3))

    def test_2d_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            ensure_2d_array("m", [1, 2, 3])
