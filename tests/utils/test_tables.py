"""Unit tests for repro.utils.tables."""

from __future__ import annotations

import pytest

from repro.utils.tables import AsciiTable, format_table


class TestAsciiTable:
    def test_renders_headers_and_rows(self):
        table = AsciiTable(headers=["a", "b"], title="T")
        table.add_row(1, 2.5)
        table.add_row("x", True)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-+-" in lines[2]
        assert "x" in text and "yes" in text

    def test_row_length_mismatch_raises(self):
        table = AsciiTable(headers=["a", "b"])
        with pytest.raises(ValueError, match="expected 2 values"):
            table.add_row(1)

    def test_columns_are_aligned(self):
        table = AsciiTable(headers=["name", "v"])
        table.add_row("short", 1)
        table.add_row("a-much-longer-name", 2)
        lines = table.render().splitlines()
        # all data/header lines have the same separator position
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_float_format_applied(self):
        table = AsciiTable(headers=["v"], float_format=".2f")
        table.add_row(3.14159)
        assert "3.14" in table.render()
        assert "3.14159" not in table.render()

    def test_add_rows_bulk(self):
        table = AsciiTable(headers=["a", "b"])
        table.add_rows([(1, 2), (3, 4)])
        assert len(table.rows) == 2

    def test_no_title_renders_without_blank_line(self):
        table = AsciiTable(headers=["a"])
        table.add_row(1)
        assert not table.render().startswith("\n")


class TestFormatTable:
    def test_one_shot(self):
        text = format_table(["x", "y"], [(1, 2), (3, 4)], title="points")
        assert text.startswith("points")
        assert "3" in text and "4" in text
