"""Unit tests for the CI benchmark regression comparator (benchmarks/compare.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[2] / "benchmarks" / "compare.py",
)
compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare)


def write_bench(
    path: Path, stats: dict[str, float], speedups: dict[str, float] | None = None
) -> str:
    speedups = speedups or {}
    payload = {
        "benchmarks": [
            {
                "name": name,
                "stats": {"min": value, "mean": value * 1.1},
                "extra_info": (
                    {"speedup": speedups[name]} if name in speedups else {}
                ),
            }
            for name, value in stats.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_within_threshold_passes(self, tmp_path, capsys):
        baseline = write_bench(tmp_path / "base.json", {"bench_a": 1.0, "bench_b": 2.0})
        current = write_bench(tmp_path / "cur.json", {"bench_a": 1.2, "bench_b": 1.9})
        assert compare.main([baseline, current, "--max-slowdown", "1.30"]) == 0
        assert "all 2 benchmarks within" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        baseline = write_bench(tmp_path / "base.json", {"bench_a": 1.0})
        current = write_bench(tmp_path / "cur.json", {"bench_a": 1.5})
        assert compare.main([baseline, current, "--max-slowdown", "1.30"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL bench_a" in out

    def test_speedup_passes(self, tmp_path):
        baseline = write_bench(tmp_path / "base.json", {"bench_a": 2.0})
        current = write_bench(tmp_path / "cur.json", {"bench_a": 0.5})
        assert compare.main([baseline, current]) == 0

    def test_missing_baseline_passes_with_note(self, tmp_path, capsys):
        current = write_bench(tmp_path / "cur.json", {"bench_a": 1.0})
        assert compare.main([str(tmp_path / "nope.json"), current]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_corrupt_baseline_treated_as_missing(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        current = write_bench(tmp_path / "cur.json", {"bench_a": 1.0})
        assert compare.main([str(bad), current]) == 0

    def test_missing_current_errors(self, tmp_path):
        baseline = write_bench(tmp_path / "base.json", {"bench_a": 1.0})
        assert compare.main([baseline, str(tmp_path / "nope.json")]) == 2

    def test_required_benchmark_enforced(self, tmp_path, capsys):
        baseline = write_bench(tmp_path / "base.json", {"bench_a": 1.0})
        current = write_bench(tmp_path / "cur.json", {"bench_a": 1.0})
        assert compare.main([baseline, current, "--require", "bench_a"]) == 0
        assert compare.main([baseline, current, "--require", "network_batch"]) == 2
        assert "required benchmarks not found" in capsys.readouterr().out

    def test_disjoint_benchmarks_pass(self, tmp_path, capsys):
        """Renamed benchmarks compare nothing — pass, never crash."""
        baseline = write_bench(tmp_path / "base.json", {"old_name": 1.0})
        current = write_bench(tmp_path / "cur.json", {"new_name": 1.0})
        assert compare.main([baseline, current]) == 0
        assert "no common benchmarks" in capsys.readouterr().out

    def test_mean_metric_selectable(self, tmp_path):
        baseline = write_bench(tmp_path / "base.json", {"bench_a": 1.0})
        current = write_bench(tmp_path / "cur.json", {"bench_a": 1.25})
        # min ratio 1.25 < 1.30 passes; mean is also 1.25x -> still passes
        assert compare.main([baseline, current, "--metric", "mean"]) == 0


class TestSpeedupBasis:
    def test_in_run_speedup_preferred_over_wallclock(self, tmp_path, capsys):
        """A slower VM (2x wall-clock) must not fail when the in-run relative
        speedup held steady — the speedup basis is runner-speed independent."""
        baseline = write_bench(tmp_path / "base.json", {"bench_a": 1.0},
                               speedups={"bench_a": 15.0})
        current = write_bench(tmp_path / "cur.json", {"bench_a": 2.0},
                              speedups={"bench_a": 14.5})
        assert compare.main([baseline, current]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_degraded_speedup_fails_even_with_fast_wallclock(self, tmp_path, capsys):
        baseline = write_bench(tmp_path / "base.json", {"bench_a": 1.0},
                               speedups={"bench_a": 15.0})
        current = write_bench(tmp_path / "cur.json", {"bench_a": 0.9},
                              speedups={"bench_a": 6.0})  # 2.5x worse relative
        assert compare.main([baseline, current]) == 1
        assert "FAIL bench_a [speedup]" in capsys.readouterr().out

    def test_wallclock_fallback_when_speedup_missing_on_one_side(self, tmp_path):
        baseline = write_bench(tmp_path / "base.json", {"bench_a": 1.0})
        current = write_bench(tmp_path / "cur.json", {"bench_a": 1.5},
                              speedups={"bench_a": 15.0})
        assert compare.main([baseline, current]) == 1  # falls back to 1.5x wall-clock
