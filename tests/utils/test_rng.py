"""Unit tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        np.testing.assert_allclose(a, b)

    def test_existing_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        gen = as_rng(ss)
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_count_and_types(self):
        rngs = spawn_rngs(0, 4)
        assert len(rngs) == 4
        assert all(isinstance(r, np.random.Generator) for r in rngs)

    def test_streams_differ(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.random(8).tolist() for r in rngs]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible_across_calls(self):
        a = [r.random(4).tolist() for r in spawn_rngs(5, 3)]
        b = [r.random(4).tolist() for r in spawn_rngs(5, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_generator_seed_supported(self):
        gen = np.random.default_rng(1)
        rngs = spawn_rngs(gen, 2)
        assert len(rngs) == 2
