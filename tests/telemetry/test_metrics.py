"""Tests for the metrics registry: primitives, snapshots, deltas, merging."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flatten_snapshot,
    registry,
    snapshot_delta,
)


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_dict() == {"type": "counter", "value": 5}
        c.reset()
        assert c.value == 0

    def test_gauge(self):
        g = Gauge()
        g.set(2.5)
        assert g.to_dict() == {"type": "gauge", "value": 2.5}

    def test_histogram(self):
        h = Histogram()
        assert h.mean is None
        for value in (2.0, 8.0, 5.0):
            h.observe(value)
        assert h.count == 3 and h.total == 15.0
        assert h.min == 2.0 and h.max == 8.0 and h.mean == 5.0
        assert h.to_dict()["type"] == "histogram"


class TestRegistry:
    def test_same_name_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="is a counter, not a gauge"):
            reg.gauge("a")

    def test_reset_zeroes_in_place(self):
        # instrumented modules hold direct references; reset must keep them live
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(3)
        reg.reset()
        assert c.value == 0
        c.inc()
        assert reg.counter("a").value == 1

    def test_global_registry_is_shared(self):
        name = "test.metrics.shared_probe"
        metric = registry().counter(name)
        metric.inc()
        assert registry().snapshot()[name]["value"] >= 1
        metric.reset()


class TestSnapshotDelta:
    def test_counter_delta_subtracts(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc(2)
        before = reg.snapshot()
        c.inc(5)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta == {"hits": {"type": "counter", "value": 5}}

    def test_unchanged_metrics_are_omitted(self):
        reg = MetricsRegistry()
        reg.counter("idle")
        before = reg.snapshot()
        assert snapshot_delta(before, reg.snapshot()) == {}

    def test_new_zero_valued_metrics_are_omitted(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("fresh")  # registered but never incremented
        reg.histogram("empty")
        assert snapshot_delta(before, reg.snapshot()) == {}

    def test_gauge_reports_final_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        g.set(1)
        before = reg.snapshot()
        g.set(7)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["level"] == {"type": "gauge", "value": 7}

    def test_histogram_delta_count_and_total(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        h.observe(10)
        before = reg.snapshot()
        h.observe(2)
        h.observe(4)
        delta = snapshot_delta(before, reg.snapshot())["sizes"]
        assert delta["count"] == 2 and delta["total"] == 6.0 and delta["mean"] == 3.0


class TestMergeDelta:
    def test_worker_delta_folds_into_parent(self):
        parent = MetricsRegistry()
        parent.counter("trials").inc(2)
        worker = MetricsRegistry()
        worker.counter("trials").inc(3)
        worker.histogram("batch").observe(5)
        parent.merge_delta(snapshot_delta({}, worker.snapshot()))
        assert parent.counter("trials").value == 5
        assert parent.histogram("batch").count == 1

    def test_histogram_bounds_take_extremes(self):
        parent = MetricsRegistry()
        parent.histogram("h").observe(5)
        parent.merge_delta(
            {"h": {"type": "histogram", "count": 1, "total": 9.0, "min": 1.0, "max": 9.0}}
        )
        h = parent.histogram("h")
        assert h.min == 1.0 and h.max == 9.0 and h.count == 2

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown delta type"):
            MetricsRegistry().merge_delta({"x": {"type": "exotic"}})


class TestFlatten:
    def test_scalars_and_histograms(self):
        flat = flatten_snapshot({
            "hits": {"type": "counter", "value": 3},
            "level": {"type": "gauge", "value": 1.5},
            "sizes": {"type": "histogram", "count": 2, "total": 6.0,
                      "mean": 3.0, "min": 2.0, "max": 4.0},
        })
        assert flat["hits"] == 3
        assert flat["level"] == 1.5
        assert flat["sizes"] == {"count": 2, "total": 6.0, "mean": 3.0,
                                 "min": 2.0, "max": 4.0}
