"""Tests for progress heartbeats: event maths, throttling, rendering."""

from __future__ import annotations

import io

from repro.telemetry.progress import (
    ProgressEvent,
    ProgressReporter,
    progress_printer,
    render_progress,
)


def _event(**overrides):
    defaults = dict(completed=5, total=10, executed=4, cache_hits=1, elapsed_s=2.0)
    defaults.update(overrides)
    return ProgressEvent(**defaults)


class TestProgressEvent:
    def test_rates_and_eta(self):
        event = _event()
        assert event.fraction == 0.5
        assert event.trials_per_second == 2.0
        assert event.cache_hit_rate == 0.2
        assert event.eta_s == 2.5  # 5 remaining at 2/s

    def test_zero_elapsed_yields_zero_rate_not_inf(self):
        event = _event(elapsed_s=0.0)
        assert event.trials_per_second == 0.0
        assert event.eta_s is None  # no rate yet

    def test_complete_event(self):
        event = _event(completed=10, executed=9, final=True)
        assert event.eta_s == 0.0
        assert event.to_dict()["final"] is True

    def test_empty_sweep_fraction(self):
        assert _event(completed=0, total=0, executed=0, cache_hits=0).fraction == 1.0


class TestReporter:
    def test_first_and_final_always_fire(self):
        clock = iter([0.0, 0.0, 0.001, 0.002]).__next__
        events = []
        reporter = ProgressReporter(events.append, total=4, min_interval_s=60.0,
                                    clock=clock)
        assert reporter.update(0, 0, 0) is not None  # first
        assert reporter.update(1, 1, 0) is None      # throttled
        assert reporter.update(4, 4, 0, final=True) is not None
        assert [e.final for e in events] == [False, True]

    def test_interval_throttling(self):
        times = iter([0.0, 0.0, 0.1, 0.6, 0.65])
        events = []
        reporter = ProgressReporter(events.append, total=100, min_interval_s=0.5,
                                    clock=times.__next__)
        reporter.update(1, 1, 0)   # emits at 0.0
        reporter.update(2, 2, 0)   # 0.1: throttled
        reporter.update(3, 3, 0)   # 0.6: emits
        reporter.update(4, 4, 0)   # 0.65: throttled
        assert [e.completed for e in events] == [1, 3]

    def test_completion_bypasses_throttle(self):
        clock = iter([0.0, 0.0, 0.001]).__next__
        events = []
        reporter = ProgressReporter(events.append, total=2, min_interval_s=60.0,
                                    clock=clock)
        reporter.update(1, 1, 0)
        reporter.update(2, 2, 0)  # completed == total: emits despite interval
        assert [e.completed for e in events] == [1, 2]


class TestRendering:
    def test_running_line(self):
        line = render_progress(_event())
        assert "5/10 (50%)" in line
        assert "2.0 trials/s" in line
        assert "cache 20%" in line
        assert "eta 2.5s" in line

    def test_final_line(self):
        line = render_progress(_event(completed=10, final=True, elapsed_s=90.0))
        assert "done in 1.5m" in line

    def test_printer_writes_to_stream(self):
        stream = io.StringIO()
        progress_printer(stream)(_event())
        assert "5/10" in stream.getvalue()
