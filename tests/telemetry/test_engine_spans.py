"""Every batch engine emits spans when traced — and nothing when not.

The instrumentation contract (CONTRIBUTING): hot-path stages of a batch
engine open spans, per-batch metrics count activity, and the disabled path
records zero spans.  These tests drive each of the four engines once under
``start_trace`` and once without, asserting both halves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchFixedPointMPEngine
from repro.core.ipcore import BatchIPCoreEngine, IPCoreConfig
from repro.experiments import get_scenario
from repro.modem.batch import BatchLinkEngine
from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.batch import simulate_network_trials
from repro.network.topology import grid_deployment
from repro.network.traffic import PeriodicTraffic
from repro.telemetry import registry, start_trace


def _names(tracer):
    return [record.name for record in tracer.records]


class TestIPCoreEngineSpans:
    def test_estimate_batch_stages(self, small_matrices, rng):
        engine = BatchIPCoreEngine(
            small_matrices, IPCoreConfig(num_fc_blocks=3, word_length=8, num_paths=2)
        )
        received = rng.standard_normal((3, small_matrices.window_length)) * (1 + 0.5j)
        cycles_before = registry().counter("engine.ipcore.cycles").value
        with start_trace() as tracer:
            run = engine.estimate_batch(received)
        names = _names(tracer)
        assert "engine.ipcore.estimate_batch" in names
        assert "engine.ipcore.matched_filter" in names
        assert "engine.ipcore.iterations" in names
        # the stage spans nest under the batch span
        by_name = {r.name: r for r in tracer.records}
        batch_id = by_name["engine.ipcore.estimate_batch"].span_id
        assert by_name["engine.ipcore.matched_filter"].parent_id == batch_id
        assert by_name["engine.ipcore.iterations"].parent_id == batch_id
        # cycle accounting: schedule cycles x trials
        cycles = registry().counter("engine.ipcore.cycles").value - cycles_before
        assert cycles == run.total_cycles * 3

    def test_untraced_run_emits_nothing(self, small_matrices, rng):
        engine = BatchIPCoreEngine(
            small_matrices, IPCoreConfig(num_fc_blocks=3, word_length=8, num_paths=2)
        )
        received = rng.standard_normal((2, small_matrices.window_length)) * (1 + 0.5j)
        with start_trace() as probe:
            pass  # tracer closed: nothing below may record into it
        engine.estimate_batch(received)
        assert probe.records == []


class TestFixedPointEngineSpans:
    @pytest.fixture(scope="class")
    def tiny_spec(self):
        return (
            get_scenario("fixedpoint-bitwidth").spec
            .with_axis("word_length", (6, 8))
            .with_seed(replicates=1)
        )

    def test_run_spec_and_group_spans(self, tiny_spec):
        trials_before = registry().counter("engine.fixedpoint.trials").value
        with start_trace() as tracer:
            result = BatchFixedPointMPEngine().run_spec(tiny_spec)
        names = _names(tracer)
        assert "engine.fixedpoint.run_spec" in names
        assert names.count("engine.fixedpoint.group") == 2  # one per word length
        groups = [r for r in tracer.records if r.name == "engine.fixedpoint.group"]
        assert sorted(g.attributes["word_length"] for g in groups) == [6, 8]
        assert registry().counter("engine.fixedpoint.trials").value - trials_before == (
            result.stats.num_trials
        )


class TestLinkEngineSpans:
    def test_run_draw_and_compute_stages(self):
        frames_before = registry().counter("engine.link.frames").value
        with start_trace() as tracer:
            BatchLinkEngine(rng=0).run("DSSS", 0.0, num_symbols=8, num_frames=2)
        names = _names(tracer)
        assert "engine.link.draw" in names
        assert "engine.link.compute" in names
        assert registry().counter("engine.link.frames").value - frames_before == 2

    def test_curve_spans_nest_despite_worker_thread(self):
        # run_curve computes point t on a worker thread while drawing t+1;
        # contextvars.copy_context must keep those spans under the curve span
        with start_trace() as tracer:
            BatchLinkEngine(rng=0).run_curve("FSK", [0.0, 3.0], num_symbols=8,
                                             num_frames=2)
        by_name: dict[str, list] = {}
        for record in tracer.records:
            by_name.setdefault(record.name, []).append(record)
        (curve,) = by_name["engine.link.curve"]
        assert len(by_name["engine.link.compute"]) == 2
        for compute in by_name["engine.link.compute"]:
            assert compute.parent_id == curve.span_id


class TestNetworkEngineSpans:
    def test_trials_run_and_scan_spans(self):
        deployment = grid_deployment(3, 3, spacing_m=200.0)
        budget = ModemEnergyBudget(processing_energy_per_estimation_j=500.76e-6)
        traffic = PeriodicTraffic(report_interval_s=30.0, packet_symbols=16,
                                  jitter_fraction=0.0)
        events_before = registry().counter("engine.network.events").value
        with start_trace() as tracer:
            simulate_network_trials(
                deployment, budget, traffic=traffic, battery_capacity_j=150.0,
                seeds=[0, 1], max_time_s=3_600.0,
            )
        names = _names(tracer)
        assert "engine.network.trials" in names
        trials_span = next(r for r in tracer.records if r.name == "engine.network.trials")
        assert trials_span.attributes["mode"] == "cross-trial"
        assert registry().counter("engine.network.events").value > events_before


class TestNumpyAttributeSafety:
    def test_span_attributes_serialise_after_numpy_inputs(self, small_matrices, rng):
        # engines pass sizes/word lengths into span attributes; make sure a
        # traced run's records survive the JSONL round trip with plain types
        import json

        engine = BatchIPCoreEngine(
            small_matrices, IPCoreConfig(num_fc_blocks=1, word_length=8, num_paths=2)
        )
        received = rng.standard_normal((1, small_matrices.window_length)) * (1 + 0.5j)
        with start_trace() as tracer:
            engine.estimate_batch(received)
        for record in tracer.records:
            json.dumps(record.to_dict())  # must not raise

    def test_empty_batch_still_spans(self, small_matrices):
        engine = BatchIPCoreEngine(
            small_matrices, IPCoreConfig(num_fc_blocks=1, word_length=8, num_paths=2)
        )
        empty = np.zeros((0, small_matrices.window_length), dtype=np.complex128)
        with start_trace() as tracer:
            run = engine.estimate_batch(empty)
        assert run.num_trials == 0
        assert "engine.ipcore.estimate_batch" in _names(tracer)
