"""Tests for trace summarisation: stage totals, tree folding, slowest spans."""

from __future__ import annotations

from repro.telemetry.summary import (
    aggregate_stages,
    aggregate_tree,
    render_trace_summary,
    slowest_spans,
)
from repro.telemetry.tracing import SpanRecord


def _record(name, span_id, parent_id=None, start_s=0.0, end_s=1.0, **attributes):
    return SpanRecord(name=name, span_id=span_id, parent_id=parent_id,
                      start_s=start_s, end_s=end_s, attributes=attributes)


def _sample_trace():
    return [
        _record("sweep", "1.0", None, 0.0, 10.0),
        _record("trial", "1.1", "1.0", 0.0, 4.0, trial_index=0),
        _record("trial", "1.2", "1.0", 4.0, 10.0, trial_index=1),
        _record("engine.step", "1.3", "1.1", 0.0, 1.0),
        _record("engine.step", "1.4", "1.2", 4.0, 9.0),
    ]


class TestAggregateStages:
    def test_totals_sorted_by_time(self):
        stats = {s.name: s for s in aggregate_stages(_sample_trace())}
        assert stats["trial"].count == 2
        assert stats["trial"].total_s == 10.0
        assert stats["trial"].max_s == 6.0
        assert stats["trial"].mean_s == 5.0
        assert [s.name for s in aggregate_stages(_sample_trace())][0] in ("sweep", "trial")


class TestAggregateTree:
    def test_same_named_siblings_fold(self):
        rows = aggregate_tree(_sample_trace())
        assert [(depth, stat.name, stat.count) for depth, stat in rows] == [
            (0, "sweep", 1), (1, "trial", 2), (2, "engine.step", 2),
        ]

    def test_dangling_parents_become_roots(self):
        rows = aggregate_tree([_record("orphan", "1.0", parent_id="gone.1")])
        assert [(depth, stat.name) for depth, stat in rows] == [(0, "orphan")]


class TestSlowest:
    def test_ranked_by_duration(self):
        slow = slowest_spans(_sample_trace(), name="trial", top=1)
        assert len(slow) == 1
        assert slow[0].attributes["trial_index"] == 1  # the 6s trial

    def test_missing_name_is_empty(self):
        assert slowest_spans(_sample_trace(), name="nope") == []


class TestRender:
    def test_report_sections(self):
        report = render_trace_summary(_sample_trace())
        assert "5 spans" in report
        assert "Span tree" in report
        assert "Time per stage" in report
        assert "Slowest 'trial' spans" in report
        assert "trial_index=1" in report

    def test_empty_trace(self):
        assert render_trace_summary([]) == "empty trace (0 spans)"
