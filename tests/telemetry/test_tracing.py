"""Tests for the tracing core: spans, nesting, merging, JSONL, validation."""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.telemetry.tracing import (
    SpanRecord,
    Tracer,
    current_tracer,
    read_trace,
    span,
    start_trace,
    tracing_active,
    validate_trace,
    worker_trace,
    write_trace,
)


def _record(name="x", span_id="1.0", parent_id=None, start_s=0.0, end_s=1.0,
            attributes=None):
    return SpanRecord(
        name=name, span_id=span_id, parent_id=parent_id,
        start_s=start_s, end_s=end_s, attributes=attributes or {},
    )


class TestDisabledPath:
    def test_no_tracer_means_null_span(self):
        assert current_tracer() is None
        assert not tracing_active()
        with span("anything", key="value") as handle:
            assert handle is None  # the shared no-op yields None

    def test_null_span_is_a_singleton(self):
        assert span("a") is span("b")

    def test_forked_parent_tracer_is_ignored(self):
        with start_trace() as tracer:
            tracer.pid = os.getpid() + 1  # simulate a fork's dead copy
            assert not tracing_active()
            with span("child"):
                pass
        assert tracer.records == []


class TestRecording:
    def test_span_records_name_timing_attributes(self):
        with start_trace() as tracer:
            with span("work", size=3) as handle:
                handle.set(extra="found")
        (record,) = tracer.records
        assert record.name == "work"
        assert record.parent_id is None
        assert record.attributes == {"size": 3, "extra": "found"}
        assert record.end_s >= record.start_s
        assert record.duration_s == record.end_s - record.start_s

    def test_nested_spans_link_parent_ids(self):
        with start_trace() as tracer:
            with span("outer") as outer:
                with span("inner") as inner:
                    assert inner.span_id != outer.span_id
        by_name = {record.name: record for record in tracer.records}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_siblings_share_a_parent(self):
        with start_trace() as tracer:
            with span("parent"):
                with span("a"):
                    pass
                with span("b"):
                    pass
        by_name = {record.name: record for record in tracer.records}
        assert by_name["a"].parent_id == by_name["b"].parent_id
        assert by_name["a"].parent_id == by_name["parent"].span_id

    def test_exception_is_recorded_and_propagates(self):
        with start_trace() as tracer:
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        (record,) = tracer.records
        assert record.attributes["error"] == "RuntimeError"

    def test_span_ids_unique_across_tracers_in_one_process(self):
        # a pool worker opens a fresh tracer per trial; ids must not repeat
        ids = set()
        for _ in range(3):
            with worker_trace() as tracer:
                with span("trial"):
                    pass
            ids.add(tracer.records[0].span_id)
        assert len(ids) == 3

    def test_worker_trace_shadows_outer_tracer(self):
        with start_trace() as outer:
            with worker_trace() as inner:
                assert current_tracer() is inner
                with span("inner-work"):
                    pass
            assert current_tracer() is outer
        assert [r.name for r in inner.records] == ["inner-work"]
        assert outer.records == []


class TestAdopt:
    def test_adopt_reparents_worker_roots_only(self):
        shipped = (
            _record(name="trial", span_id="w.1", parent_id=None),
            _record(name="engine", span_id="w.2", parent_id="w.1"),
        )
        tracer = Tracer()
        tracer.adopt(shipped, parent_id="p.0")
        by_name = {record.name: record for record in tracer.records}
        assert by_name["trial"].parent_id == "p.0"
        assert by_name["engine"].parent_id == "w.1"  # interior link untouched

    def test_adopt_reparents_dangling_parents(self):
        # a forked worker may carry a parent id that never shipped
        shipped = (_record(name="trial", span_id="w.1", parent_id="ghost.9"),)
        tracer = Tracer()
        tracer.adopt(shipped, parent_id="p.0")
        assert tracer.records[0].parent_id == "p.0"


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        with start_trace() as tracer:
            with span("outer", n=1):
                with span("inner", flag=True):
                    pass
        path = write_trace(tmp_path / "nested" / "trace.jsonl", tracer.records)
        assert path.is_file()
        assert read_trace(path) == tracer.records

    def test_from_dict_round_trip(self):
        record = _record(attributes={"k": "v"})
        assert SpanRecord.from_dict(record.to_dict()) == record


class TestValidation:
    def test_valid_trace_has_no_problems(self):
        with start_trace() as tracer:
            with span("a"):
                with span("b"):
                    pass
        assert validate_trace(tracer.records) == []

    def test_duplicate_span_id(self):
        records = [_record(span_id="1.0"), _record(span_id="1.0")]
        assert any("duplicate span_id" in p for p in validate_trace(records))

    def test_dangling_parent(self):
        records = [_record(parent_id="nope.1")]
        assert any("dangling parent" in p for p in validate_trace(records))

    def test_parent_cycle(self):
        records = [
            _record(span_id="1.0", parent_id="1.1"),
            _record(span_id="1.1", parent_id="1.0"),
        ]
        assert any("parent cycle" in p for p in validate_trace(records))

    def test_negative_duration(self):
        records = [_record(start_s=2.0, end_s=1.0)]
        assert any("ends before it starts" in p for p in validate_trace(records))

    def test_empty_name_and_bad_types(self):
        records = [replace(_record(), name="")]
        problems = validate_trace(records)
        assert any("empty name" in p for p in problems)
