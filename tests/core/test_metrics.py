"""Unit tests for repro.core.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import (
    coefficient_mse,
    normalized_channel_error,
    residual_energy_ratio,
    support_recovery_rate,
)


class TestCoefficientMse:
    def test_zero_for_identical(self):
        f = np.array([1.0, 0.5j, 0.0])
        assert coefficient_mse(f, f) == 0.0

    def test_known_value(self):
        a = np.array([1.0 + 0j, 0.0])
        b = np.array([0.0 + 0j, 0.0])
        assert coefficient_mse(a, b) == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            coefficient_mse(np.zeros(3, dtype=complex), np.zeros(4, dtype=complex))


class TestNormalizedChannelError:
    def test_zero_for_identical(self):
        f = np.array([1.0, 0.5j])
        assert normalized_channel_error(f, f) == 0.0

    def test_one_for_zero_estimate(self):
        f = np.array([1.0, 0.5j])
        assert normalized_channel_error(f, np.zeros(2, dtype=complex)) == pytest.approx(1.0)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            normalized_channel_error(np.zeros(2, dtype=complex), np.ones(2, dtype=complex))


class TestSupportRecoveryRate:
    def test_perfect_recovery(self):
        assert support_recovery_rate(np.array([3, 10]), np.array([10, 3])) == 1.0

    def test_partial_recovery(self):
        assert support_recovery_rate(np.array([3, 10]), np.array([3, 50])) == 0.5

    def test_tolerance(self):
        assert support_recovery_rate(np.array([10]), np.array([11]), tolerance=1) == 1.0
        assert support_recovery_rate(np.array([10]), np.array([12]), tolerance=1) == 0.0

    def test_each_estimate_used_once(self):
        # one estimated delay cannot satisfy two true delays
        assert support_recovery_rate(np.array([10, 11]), np.array([10]), tolerance=1) == 0.5

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            support_recovery_rate(np.array([], dtype=int), np.array([1]))

    def test_empty_estimate_gives_zero(self):
        assert support_recovery_rate(np.array([5]), np.array([], dtype=int)) == 0.0


class TestResidualEnergyRatio:
    def test_zero_for_exact_model(self, small_matrices):
        f = np.zeros(small_matrices.num_delays, dtype=complex)
        f[2] = 1.0 - 0.5j
        received = small_matrices.synthesize(f)
        assert residual_energy_ratio(received, small_matrices.S, f) == pytest.approx(0.0, abs=1e-15)

    def test_one_for_zero_estimate(self, small_matrices):
        f = np.zeros(small_matrices.num_delays, dtype=complex)
        f[2] = 1.0
        received = small_matrices.synthesize(f)
        zero = np.zeros_like(f)
        assert residual_energy_ratio(received, small_matrices.S, zero) == pytest.approx(1.0)

    def test_zero_received_rejected(self, small_matrices):
        with pytest.raises(ValueError):
            residual_energy_ratio(
                np.zeros(small_matrices.window_length, dtype=complex),
                small_matrices.S,
                np.zeros(small_matrices.num_delays, dtype=complex),
            )

    def test_shape_validation(self, small_matrices):
        with pytest.raises(ValueError):
            residual_energy_ratio(
                np.ones(5, dtype=complex),
                small_matrices.S,
                np.zeros(small_matrices.num_delays, dtype=complex),
            )
