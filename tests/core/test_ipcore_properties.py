"""Property-based tests of the IP-core engines (hypothesis).

Three families of invariants, run under the pinned derandomised ``ci``
profile in CI (see ``tests/conftest.py``):

* **batch == loop-of-scalar** — for random parallelism, word length and
  trial counts, :meth:`BatchIPCoreEngine.estimate_batch` is bit-identical
  (``==`` on raw integer codes) to a Python loop of scalar
  :meth:`IPCoreSimulator.estimate` calls;
* **cycle monotonicity** — the closed-form schedule strictly decreases as
  the parallelism doubles (and scales exactly as Ns/P);
* **partition invariance** — the estimate is identical at P=1 and P=Ns
  (and any level in between) at equal word length: partitioning is a
  scheduling choice, never a numerical one.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.core.ipcore import (  # noqa: E402
    BatchIPCoreEngine,
    ControlUnit,
    IPCoreConfig,
    IPCoreSimulator,
)

#: Divisors of the small fixture's 24 delay columns.
SMALL_PARALLELISM = (1, 2, 3, 4, 6, 12, 24)

WORD_LENGTHS = st.sampled_from((2, 6, 8, 12, 16, 24, 32))


def _received_stack(seed: int, trials: int, window: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    stack = rng.standard_normal((trials, window)) + 1j * rng.standard_normal((trials, window))
    if trials > 1:
        stack[0] = 0.0  # keep the all-zero corner in every multi-trial batch
    return stack


class TestBatchEqualsLoopOfScalar:
    @given(
        num_fc_blocks=st.sampled_from(SMALL_PARALLELISM),
        word_length=WORD_LENGTHS,
        trials=st.integers(0, 4),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_batch_equals_scalar_loop(
        self, small_matrices, num_fc_blocks, word_length, trials, seed
    ):
        engine = BatchIPCoreEngine(
            small_matrices,
            IPCoreConfig(num_fc_blocks=num_fc_blocks, word_length=word_length, num_paths=3),
        )
        received = _received_stack(seed, trials, small_matrices.window_length)
        batch = engine.estimate_batch(received)
        assert batch.num_trials == trials
        for trial in range(trials):
            scalar = engine.core.estimate(received[trial])
            assert batch.result[trial] == scalar.result
            assert batch[trial].total_cycles == scalar.total_cycles


class TestCycleMonotonicity:
    @given(
        num_delays=st.sampled_from((12, 16, 64, 112)),
        exponent=st.integers(0, 3),
        num_paths=st.integers(1, 8),
    )
    def test_cycles_strictly_decrease_as_p_doubles(self, num_delays, exponent, num_paths):
        parallelism = 2 ** exponent
        if num_delays % (2 * parallelism) != 0:
            return  # 2P must also divide Ns for the doubled design to exist
        window = 2 * num_delays
        narrow = ControlUnit(num_delays, window, parallelism, num_paths).total_cycles()
        doubled = ControlUnit(num_delays, window, 2 * parallelism, num_paths).total_cycles()
        assert doubled < narrow
        assert doubled * 2 == narrow  # exactly Ns/P scaling with the defaults

    @given(num_paths=st.integers(1, 12))
    def test_full_doubling_chain_is_strictly_decreasing(self, num_paths):
        chain = [
            ControlUnit(112, 224, p, num_paths).total_cycles() for p in (1, 2, 4, 8, 28, 56, 112)
        ]
        assert all(earlier > later for earlier, later in zip(chain, chain[1:]))


class TestPartitionInvariance:
    @given(
        word_length=WORD_LENGTHS,
        seed=st.integers(0, 2**32 - 1),
    )
    def test_serial_equals_fully_parallel(self, small_matrices, word_length, seed):
        received = _received_stack(seed, 1, small_matrices.window_length)[0]
        results = []
        for parallelism in (1, small_matrices.num_delays):
            core = IPCoreSimulator(
                small_matrices,
                IPCoreConfig(
                    num_fc_blocks=parallelism, word_length=word_length, num_paths=3
                ),
            )
            results.append(core.estimate(received).result)
        assert results[0] == results[1]

    @given(
        word_length=st.sampled_from((2, 8, 16)),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_every_intermediate_level_agrees(self, small_matrices, word_length, seed):
        received = _received_stack(seed, 1, small_matrices.window_length)[0]
        estimates = [
            IPCoreSimulator(
                small_matrices,
                IPCoreConfig(num_fc_blocks=p, word_length=word_length, num_paths=3),
            ).estimate(received).result
            for p in SMALL_PARALLELISM
        ]
        assert all(estimate == estimates[0] for estimate in estimates[1:])
