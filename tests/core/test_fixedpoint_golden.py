"""Golden raw integer codes of the fixed-point MP datapath.

Pins the exact integer codes the datapath produces for a fixed, fully
deterministic input at the paper's word lengths (8/12/16), so any silent
change to the quantisation rules — a rounding-mode default, a scale
derivation, an accumulator width — fails loudly rather than drifting the E6
results.

Why this is cross-platform stable: the golden received vector is built from
integer arithmetic on a dyadic grid (no RNG, no libm transcendentals), the
S matrix is ±1-valued, and at word lengths <= 16 every product and partial
sum in the matched filter fits float64's 53-bit integer mantissa — the
arithmetic is *exact*, so BLAS summation order and FMA contraction cannot
change a single bit, and the element-wise quantisation steps are IEEE 754
deterministic.  The same codes must come out of the scalar and the batched
datapath on every platform and NumPy version.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fixedpoint_mp import FixedPointMatchingPursuit

#: Selection order, coefficient raw codes on the selected delays (real and
#: imaginary), decision raw codes, and the derived scales per word length.
GOLDEN = {
    8: {
        "path_indices": [12, 87, 40, 13, 11, 82],
        "raw_real": [82, 60, -48, 20, 16, -15],
        "raw_imag": [6, 24, 38, -14, -15, 10],
        "raw_decisions": [53, 33, 29, 5, 4, 3],
        "coefficient_scale": 0.5703125,
        "decision_scale": 36.5,
        "accumulator": ("Fix", 24, 7),
    },
    12: {
        "path_indices": [12, 87, 40, 13, 11, 110],
        "raw_real": [1312, 962, -771, 325, 271, -280],
        "raw_imag": [93, 390, 598, -204, -211, 172],
        "raw_decisions": [845, 526, 465, 72, 58, 53],
        "coefficient_scale": 0.5712890625,
        "decision_scale": 36.5625,
        "accumulator": ("Fix", 28, 11),
    },
    16: {
        "path_indices": [12, 87, 40, 13, 11, 110],
        "raw_real": [21005, 15397, -12345, 5195, 4332, -4474],
        "raw_imag": [1489, 6241, 9580, -3267, -3372, 2766],
        "raw_decisions": [13532, 8423, 7452, 1149, 920, 844],
        "coefficient_scale": 0.571441650390625,
        "decision_scale": 36.572265625,
        "accumulator": ("Fix", 32, 15),
    },
}


@pytest.fixture(scope="module")
def golden_received() -> np.ndarray:
    """A three-path channel plus dyadic integer pseudo-noise (RNG-free)."""
    n = np.arange(224)
    real = ((n * 2654435761) % 2048 - 1024) / 1024.0
    imag = ((n * 40503 + 17) % 2048 - 1024) / 1024.0
    noise = (real + 1j * imag) * 0.0625
    return noise  # combined with the channel below


@pytest.fixture(scope="module")
def golden_problem(aquamodem_matrices, golden_received) -> np.ndarray:
    f_true = np.zeros(112, dtype=np.complex128)
    f_true[12] = 0.75 - 0.25j
    f_true[40] = -0.5 + 0.375j
    f_true[87] = 0.25 + 0.125j
    return aquamodem_matrices.S @ f_true + golden_received


class TestGoldenRawCodes:
    @pytest.mark.parametrize("word_length", sorted(GOLDEN))
    def test_scalar_datapath_matches_golden(
        self, aquamodem_matrices, golden_problem, word_length
    ):
        golden = GOLDEN[word_length]
        estimator = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=word_length, num_paths=6
        )
        result = estimator.estimate(golden_problem)
        selected = result.path_indices
        assert selected.tolist() == golden["path_indices"]
        assert result.raw_real[selected].tolist() == golden["raw_real"]
        assert result.raw_imag[selected].tolist() == golden["raw_imag"]
        assert result.raw_decisions.tolist() == golden["raw_decisions"]
        assert result.coefficient_scale == golden["coefficient_scale"]
        assert result.decision_scale == golden["decision_scale"]
        assert result.input_scale == 1.0
        kind, bits, fraction = golden["accumulator"]
        assert str(result.accumulator_format) == f"{kind}{bits}_{fraction}"
        # everything off the selected support stays exactly zero
        mask = np.ones(112, dtype=bool)
        mask[selected] = False
        assert not result.raw_real[mask].any()
        assert not result.raw_imag[mask].any()

    @pytest.mark.parametrize("word_length", sorted(GOLDEN))
    def test_batched_datapath_matches_golden(
        self, aquamodem_matrices, golden_problem, word_length
    ):
        golden = GOLDEN[word_length]
        estimator = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=word_length, num_paths=6
        )
        result = estimator.estimate_batch(golden_problem[np.newaxis, :])[0]
        selected = result.path_indices
        assert selected.tolist() == golden["path_indices"]
        assert result.raw_real[selected].tolist() == golden["raw_real"]
        assert result.raw_imag[selected].tolist() == golden["raw_imag"]
        assert result.raw_decisions.tolist() == golden["raw_decisions"]

    def test_golden_input_is_reproducible(self, golden_problem):
        """The input itself is pinned: dyadic values, exact checksums."""
        assert float(golden_problem.real.sum()) == 7.9462890625
        assert float(golden_problem.imag.sum()) == 4.0751953125
