"""Golden raw integer codes and cycle counts of the IP-core datapath.

Follows the ``test_fixedpoint_golden.py`` convention: a fixed, RNG-free
dyadic input whose exact quantised codes are pinned per design point, plus —
new to the IP-core layer — the exact per-phase :class:`ScheduleBreakdown`
cycle counts for the paper's (P, w) corners {(1, 8), (14, 12), (112, 16)}.

The code tables are *shared* with the fixed-point golden test: the IP core
is bit-faithful to ``FixedPointMatchingPursuit`` at every parallelism level
(partitioning cannot move a quantisation point), so the same golden codes
must come out of the serial, the 14-block and the fully parallel core.  Any
silent change to the quantisation rules or the control schedule fails this
test loudly on every platform (the input is exact dyadic arithmetic; see
the fixed-point golden module for the cross-platform argument).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ipcore import BatchIPCoreEngine, IPCoreConfig, IPCoreSimulator

from tests.core.test_fixedpoint_golden import GOLDEN

#: The paper's design-point corners and their exact per-phase cycle counts:
#: matched filter = (Ns/P) * 2Ns, iterations = Nf * (Ns/P) * 4, drain = 0.
GOLDEN_SCHEDULES = {
    (1, 8): {"matched_filter": 25_088, "iterations": 2_688, "drain": 0, "total": 27_776},
    (14, 12): {"matched_filter": 1_792, "iterations": 192, "drain": 0, "total": 1_984},
    (112, 16): {"matched_filter": 224, "iterations": 24, "drain": 0, "total": 248},
}


@pytest.fixture(scope="module")
def golden_problem(aquamodem_matrices) -> np.ndarray:
    """The fixed-point golden problem: three dyadic taps + dyadic pseudo-noise."""
    n = np.arange(224)
    real = ((n * 2654435761) % 2048 - 1024) / 1024.0
    imag = ((n * 40503 + 17) % 2048 - 1024) / 1024.0
    noise = (real + 1j * imag) * 0.0625
    f_true = np.zeros(112, dtype=np.complex128)
    f_true[12] = 0.75 - 0.25j
    f_true[40] = -0.5 + 0.375j
    f_true[87] = 0.25 + 0.125j
    return aquamodem_matrices.S @ f_true + noise


class TestGoldenIPCore:
    @pytest.mark.parametrize("num_fc_blocks,word_length", sorted(GOLDEN_SCHEDULES))
    def test_scalar_core_matches_golden_codes(
        self, aquamodem_matrices, golden_problem, num_fc_blocks, word_length
    ):
        golden = GOLDEN[word_length]
        core = IPCoreSimulator(
            aquamodem_matrices,
            IPCoreConfig(num_fc_blocks=num_fc_blocks, word_length=word_length, num_paths=6),
        )
        result = core.estimate(golden_problem).result
        selected = result.path_indices
        assert selected.tolist() == golden["path_indices"]
        assert result.raw_real[selected].tolist() == golden["raw_real"]
        assert result.raw_imag[selected].tolist() == golden["raw_imag"]
        assert result.raw_decisions.tolist() == golden["raw_decisions"]
        assert result.coefficient_scale == golden["coefficient_scale"]
        assert result.decision_scale == golden["decision_scale"]
        assert result.input_scale == 1.0
        kind, bits, fraction = golden["accumulator"]
        assert str(result.accumulator_format) == f"{kind}{bits}_{fraction}"

    @pytest.mark.parametrize("num_fc_blocks,word_length", sorted(GOLDEN_SCHEDULES))
    def test_batched_core_matches_golden_codes(
        self, aquamodem_matrices, golden_problem, num_fc_blocks, word_length
    ):
        golden = GOLDEN[word_length]
        engine = BatchIPCoreEngine(
            aquamodem_matrices,
            IPCoreConfig(num_fc_blocks=num_fc_blocks, word_length=word_length, num_paths=6),
        )
        result = engine.estimate_batch(golden_problem[np.newaxis, :]).result[0]
        selected = result.path_indices
        assert selected.tolist() == golden["path_indices"]
        assert result.raw_real[selected].tolist() == golden["raw_real"]
        assert result.raw_imag[selected].tolist() == golden["raw_imag"]
        assert result.raw_decisions.tolist() == golden["raw_decisions"]

    @pytest.mark.parametrize("num_fc_blocks,word_length", sorted(GOLDEN_SCHEDULES))
    def test_schedule_breakdown_matches_golden_cycles(
        self, aquamodem_matrices, golden_problem, num_fc_blocks, word_length
    ):
        golden = GOLDEN_SCHEDULES[(num_fc_blocks, word_length)]
        core = IPCoreSimulator(
            aquamodem_matrices,
            IPCoreConfig(num_fc_blocks=num_fc_blocks, word_length=word_length, num_paths=6),
        )
        schedule = core.estimate(golden_problem).schedule
        assert schedule.matched_filter_cycles == golden["matched_filter"]
        assert schedule.iteration_cycles == golden["iterations"]
        assert schedule.drain_cycles == golden["drain"]
        assert schedule.total_cycles == golden["total"]
        # the closed-form schedule the batched engine shares is the same one
        engine = BatchIPCoreEngine(simulator=core)
        assert engine.estimate_batch(golden_problem[np.newaxis, :]).schedule == schedule
