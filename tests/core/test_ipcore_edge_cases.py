"""Edge-case regressions for the IP-core engines.

The corners the conformance sweep's random problems do not reach by
construction: exhausting every delay (num_paths == num_delays), an all-zero
receive vector (zero dynamic-range scale), w=2 tie-break storms, and the
configuration validation error messages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.core.ipcore import BatchIPCoreEngine, IPCoreConfig, IPCoreSimulator


class TestFullDelaySweep:
    @pytest.mark.parametrize("num_fc_blocks", (1, 3, 12))
    def test_num_paths_equals_num_delays(self, small_matrices, num_fc_blocks, rng):
        """Every delay gets selected exactly once, still bit-exact three ways."""
        num_delays = small_matrices.num_delays
        config = IPCoreConfig(
            num_fc_blocks=num_fc_blocks, word_length=8, num_paths=num_delays
        )
        engine = BatchIPCoreEngine(small_matrices, config)
        received = rng.standard_normal((2, small_matrices.window_length)) * (1 + 0.5j)
        batch = engine.estimate_batch(received)
        reference = FixedPointMatchingPursuit(
            small_matrices, word_length=8, num_paths=num_delays
        )
        for trial in range(2):
            scalar = engine.core.estimate(received[trial])
            assert sorted(scalar.result.path_indices.tolist()) == list(range(num_delays))
            assert batch.result[trial] == scalar.result
            assert scalar.result == reference.estimate(received[trial])


class TestAllZeroReceived:
    def test_zero_vector_three_ways(self, small_matrices):
        """A silent window yields the all-zero estimate on every path."""
        engine = BatchIPCoreEngine(
            small_matrices, IPCoreConfig(num_fc_blocks=3, word_length=8, num_paths=3)
        )
        zero = np.zeros(small_matrices.window_length, dtype=np.complex128)
        scalar = engine.core.estimate(zero)
        batch = engine.estimate_batch(zero[np.newaxis, :])
        reference = FixedPointMatchingPursuit(
            small_matrices, word_length=8, num_paths=3
        ).estimate(zero)
        assert scalar.result == reference
        assert batch.result[0] == scalar.result
        assert not scalar.result.raw_real.any()
        assert not scalar.result.raw_imag.any()
        assert not scalar.result.raw_decisions.any()
        # zero input ties every Q: argmax selects delays 0, 1, 2 in order
        assert scalar.result.path_indices.tolist() == [0, 1, 2]

    def test_zero_row_inside_mixed_batch(self, small_matrices, rng):
        engine = BatchIPCoreEngine(
            small_matrices, IPCoreConfig(num_fc_blocks=4, word_length=12, num_paths=3)
        )
        received = rng.standard_normal((3, small_matrices.window_length)) + 0j
        received[1] = 0.0
        batch = engine.estimate_batch(received)
        for trial in range(3):
            assert batch.result[trial] == engine.core.estimate(received[trial]).result


class TestNarrowWordTieBreaks:
    def test_w2_tie_breaks_identical_across_all_paths(self, small_matrices, rng):
        """At w=2 the coarse grid floods Q with ties; every datapath must
        resolve them with the same first-maximum rule."""
        received = rng.standard_normal((5, small_matrices.window_length)) * 0.25 + 0j
        reference = FixedPointMatchingPursuit(small_matrices, word_length=2, num_paths=4)
        for num_fc_blocks in (1, 2, 6, 12):
            engine = BatchIPCoreEngine(
                small_matrices,
                IPCoreConfig(num_fc_blocks=num_fc_blocks, word_length=2, num_paths=4),
            )
            batch = engine.estimate_batch(received)
            for trial in range(5):
                scalar = engine.core.estimate(received[trial])
                expected = reference.estimate(received[trial])
                assert scalar.result == expected
                assert batch.result[trial] == scalar.result
                np.testing.assert_array_equal(
                    scalar.result.path_indices, expected.path_indices
                )


class TestConfigurationValidation:
    def test_non_divisible_parallelism_message_names_both_numbers(self, small_matrices):
        """The ValueError pin: the message must carry P and the column count."""
        with pytest.raises(ValueError, match=r"num_fc_blocks \(5\).*\(24\)"):
            IPCoreSimulator(small_matrices, IPCoreConfig(num_fc_blocks=5))

    def test_non_divisible_parallelism_rejected_by_engine_too(self, small_matrices):
        with pytest.raises(ValueError, match=r"\(7\).*\(24\)"):
            BatchIPCoreEngine(small_matrices, IPCoreConfig(num_fc_blocks=7))

    def test_engine_rejects_conflicting_construction(self, small_matrices):
        core = IPCoreSimulator(small_matrices, IPCoreConfig(num_fc_blocks=3))
        with pytest.raises(ValueError, match="not both"):
            BatchIPCoreEngine(small_matrices, simulator=core)
        with pytest.raises(ValueError, match="matrices are required"):
            BatchIPCoreEngine()
        assert BatchIPCoreEngine(simulator=core).core is core
