"""Property tests for the batched Matching Pursuits kernel.

Parametrized over waveform geometry, window length, path count and batch
size (including the ``trials=1`` and empty-batch edge cases): every trial's
selected delays are unique, its coefficient vector has exactly ``num_paths``
non-zeros, and the batch agrees with the per-trial reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matching_pursuit import (
    BatchMatchingPursuitResult,
    matching_pursuit,
    matching_pursuit_batch,
)
from repro.dsp.signal_matrix import build_signal_matrices


def _random_matrices(rng, ns, window_length):
    waveform = np.sign(rng.standard_normal(ns)) + (rng.random(ns) < 0.1)
    waveform[waveform == 0] = 1.0
    return build_signal_matrices(waveform, window_length=window_length)


@pytest.mark.parametrize(
    "ns,window_length,num_paths,trials",
    [
        (16, 32, 1, 1),
        (16, 32, 4, 1),
        (16, 40, 3, 5),
        (24, 48, 6, 7),
        (32, 64, 8, 3),
        (8, 16, 2, 11),
        (48, 96, 6, 2),
    ],
)
def test_batch_properties(ns, window_length, num_paths, trials):
    rng = np.random.default_rng(ns * 1000 + window_length * 10 + num_paths + trials)
    matrices = _random_matrices(rng, ns, window_length)
    received = rng.standard_normal((trials, window_length)) + 1j * rng.standard_normal(
        (trials, window_length)
    )

    result = matching_pursuit_batch(received, matrices, num_paths=num_paths)

    assert result.num_trials == trials
    assert result.num_paths == num_paths
    assert result.coefficients.shape == (trials, matrices.num_delays)
    assert result.path_indices.shape == (trials, num_paths)
    for trial in range(trials):
        delays = result.path_indices[trial]
        # selected delays are unique per trial ...
        assert len(set(delays.tolist())) == num_paths
        assert delays.min() >= 0 and delays.max() < matrices.num_delays
        # ... and the dense vector carries exactly num_paths non-zeros
        nonzero = np.nonzero(result.coefficients[trial])[0]
        assert nonzero.shape[0] == num_paths
        assert set(nonzero.tolist()) == set(delays.tolist())
        # the batch row agrees with the per-trial reference
        single = matching_pursuit(received[trial], matrices, num_paths=num_paths)
        assert np.array_equal(delays, single.path_indices)
        np.testing.assert_allclose(
            result.coefficients[trial], single.coefficients, rtol=1e-12, atol=1e-14
        )


def test_empty_batch():
    rng = np.random.default_rng(0)
    matrices = _random_matrices(rng, 16, 32)
    result = matching_pursuit_batch(
        np.zeros((0, matrices.window_length), dtype=np.complex128),
        matrices,
        num_paths=4,
    )
    assert result.num_trials == 0
    assert len(result) == 0
    assert result.coefficients.shape == (0, matrices.num_delays)
    assert result.path_indices.shape == (0, 4)
    assert result.unbatch() == []


def test_from_results_empty():
    empty = BatchMatchingPursuitResult.from_results([], num_delays=12)
    assert empty.num_trials == 0
    assert empty.coefficients.shape == (0, 12)


def test_single_trial_matches_getitem():
    rng = np.random.default_rng(4)
    matrices = _random_matrices(rng, 20, 44)
    received = rng.standard_normal((1, 44)) + 1j * rng.standard_normal((1, 44))
    batch = matching_pursuit_batch(received, matrices, num_paths=5)
    single = batch[0]
    assert single.num_paths == 5
    assert np.array_equal(single.path_indices, batch.path_indices[0])
    pairs = single.as_delay_gain_pairs()
    assert pairs == sorted(pairs, key=lambda p: p[0])


def test_validation_errors():
    rng = np.random.default_rng(1)
    matrices = _random_matrices(rng, 16, 32)
    good = np.zeros((2, matrices.window_length), dtype=np.complex128)
    with pytest.raises(ValueError):
        matching_pursuit_batch(good, matrices, S=matrices.S)
    with pytest.raises(ValueError):
        matching_pursuit_batch(good)
    with pytest.raises(ValueError):
        matching_pursuit_batch(good, matrices, num_paths=0)
    with pytest.raises(ValueError):
        matching_pursuit_batch(good, matrices, num_paths=matrices.num_delays + 1)
    with pytest.raises(ValueError):
        matching_pursuit_batch(good[:, :-1], matrices, num_paths=2)
