"""Unit tests for the design-space exploration engine."""

from __future__ import annotations

import pytest

from repro.core.dse import (
    DesignPoint,
    DesignSpaceExplorer,
    PAPER_BIT_WIDTHS,
    REAL_TIME_DEADLINE_S,
    divisors,
)
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55


class TestDivisors:
    def test_divisors_of_112(self):
        assert divisors(112) == [1, 2, 4, 7, 8, 14, 16, 28, 56, 112]

    def test_divisors_of_one(self):
        assert divisors(1) == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            divisors(0)


class TestDesignSpaceExplorer:
    @pytest.fixture(scope="class")
    def explorer(self) -> DesignSpaceExplorer:
        return DesignSpaceExplorer(include_infeasible=True)

    @pytest.fixture(scope="class")
    def evaluations(self, explorer):
        return explorer.explore()

    def test_point_count(self, evaluations):
        # 3 bit widths x 3 parallelism levels x 2 devices
        assert len(evaluations) == 18

    def test_infeasible_points_are_the_spartan3_fully_parallel_ones(self, evaluations):
        infeasible = [e for e in evaluations if not e.feasible]
        assert len(infeasible) == 3
        assert all(e.point.device.family == "Spartan-3" for e in infeasible)
        assert all(e.point.num_fc_blocks == 112 for e in infeasible)
        assert all("dsp48" in e.implementation.area.limiting_resources for e in infeasible)

    def test_feasible_only_filtering(self):
        explorer = DesignSpaceExplorer(include_infeasible=False)
        assert len(explorer.explore()) == 15

    def test_all_points_meet_realtime_deadline(self, evaluations):
        # Section V: even the most serial design is well within 22.4 ms
        assert all(e.meets_deadline for e in evaluations)
        assert all(e.time_us < REAL_TIME_DEADLINE_S * 1e6 for e in evaluations)

    def test_power_increases_with_parallelism(self, evaluations):
        for device in ("Virtex-4", "Spartan-3"):
            for bits in PAPER_BIT_WIDTHS:
                powers = {
                    e.point.num_fc_blocks: e.power_w
                    for e in evaluations
                    if e.point.device.family == device
                    and e.point.word_length == bits
                    and e.feasible
                }
                levels = sorted(powers)
                assert [powers[p] for p in levels] == sorted(powers[p] for p in levels)

    def test_energy_decreases_with_parallelism(self, evaluations):
        for device in ("Virtex-4", "Spartan-3"):
            for bits in PAPER_BIT_WIDTHS:
                energies = {
                    e.point.num_fc_blocks: e.energy_uj
                    for e in evaluations
                    if e.point.device.family == device
                    and e.point.word_length == bits
                    and e.feasible
                }
                levels = sorted(energies)
                assert [energies[p] for p in levels] == sorted(
                    (energies[p] for p in levels), reverse=True
                )

    def test_virtex4_draws_more_power_than_spartan3(self, evaluations):
        """Figure 6: the Virtex-4 consumes more power at every comparable point."""
        for bits in PAPER_BIT_WIDTHS:
            for p in (1, 14):
                v4 = next(
                    e for e in evaluations
                    if e.point.device.family == "Virtex-4"
                    and e.point.word_length == bits and e.point.num_fc_blocks == p
                )
                s3 = next(
                    e for e in evaluations
                    if e.point.device.family == "Spartan-3"
                    and e.point.word_length == bits and e.point.num_fc_blocks == p
                )
                assert v4.power_w > s3.power_w

    def test_minimum_energy_point_is_fully_parallel_8bit_virtex4(self, explorer, evaluations):
        best = explorer.minimum_energy_point(evaluations)
        assert best.point.device.family == "Virtex-4"
        assert best.point.num_fc_blocks == 112
        assert best.point.word_length == 8

    def test_pareto_front_is_nondominated_and_sorted(self, explorer, evaluations):
        front = explorer.pareto_front(evaluations)
        assert front
        slices = [e.slices for e in front]
        assert slices == sorted(slices)
        feasible = [e for e in evaluations if e.feasible]
        for member in front:
            assert not any(other.dominates(member) for other in feasible)

    def test_render_table_contains_every_point(self, explorer, evaluations):
        text = explorer.render_table(evaluations)
        assert text.count("Virtex-4") == 9
        assert text.count("Spartan-3") == 9

    def test_non_divisor_level_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(parallelism_levels=(13,))

    def test_evaluate_point_direct(self):
        explorer = DesignSpaceExplorer()
        point = DesignPoint(VIRTEX4_XC4VSX55, num_fc_blocks=112, word_length=8)
        evaluation = explorer.evaluate_point(point)
        assert evaluation.feasible
        assert evaluation.slices == 11508
        assert "Virtex-4" in str(point)

    def test_custom_sweep_axes(self):
        explorer = DesignSpaceExplorer(
            devices=(SPARTAN3_XC3S5000,),
            parallelism_levels=(1, 2, 4),
            bit_widths=(8,),
        )
        assert len(explorer.explore()) == 3


class TestAccuracyColumn:
    """The E6 accuracy columns, computed on the batched fixed-point engine."""

    ACCURACY_TRIALS = 4

    @pytest.fixture(scope="class")
    def batched(self):
        explorer = DesignSpaceExplorer(
            include_infeasible=True, accuracy_trials=self.ACCURACY_TRIALS
        )
        return explorer.explore()

    @pytest.fixture(scope="class")
    def scalar(self):
        explorer = DesignSpaceExplorer(
            include_infeasible=True, accuracy_trials=self.ACCURACY_TRIALS,
            accuracy_batch=False,
        )
        return explorer.explore()

    def test_accuracy_columns_populated(self, batched):
        assert all(e.mean_normalized_error is not None for e in batched)
        assert all(e.mean_support_recovery is not None for e in batched)
        assert all(0.0 <= e.mean_support_recovery <= 1.0 for e in batched)

    def test_accuracy_identical_under_batch_true_false(self, batched, scalar):
        """The engine and the scalar datapath fill identical columns (==)."""
        assert [
            (e.mean_normalized_error, e.mean_support_recovery) for e in batched
        ] == [
            (e.mean_normalized_error, e.mean_support_recovery) for e in scalar
        ]

    def test_accuracy_depends_only_on_word_length(self, batched):
        by_width: dict[int, set] = {}
        for e in batched:
            by_width.setdefault(e.point.word_length, set()).add(
                (e.mean_normalized_error, e.mean_support_recovery)
            )
        assert all(len(values) == 1 for values in by_width.values())

    def test_wider_words_estimate_no_worse(self, batched):
        errors = {e.point.word_length: e.mean_normalized_error for e in batched}
        assert errors[16] <= errors[8]

    def test_infeasible_spartan3_fully_parallel_still_flagged(self, batched):
        """The accuracy columns must not disturb the feasibility analysis."""
        infeasible = [e for e in batched if not e.feasible]
        assert len(infeasible) == 3
        assert all(e.point.device.family == "Spartan-3" for e in infeasible)
        assert all(e.point.num_fc_blocks == 112 for e in infeasible)
        assert all(e.mean_normalized_error is not None for e in infeasible)

    def test_disabled_by_default(self):
        evaluation = DesignSpaceExplorer().explore()[0]
        assert evaluation.mean_normalized_error is None
        assert evaluation.mean_support_recovery is None

    def test_render_table_gains_accuracy_column(self, batched):
        explorer = DesignSpaceExplorer(include_infeasible=True, accuracy_trials=2)
        text = explorer.render_table(batched)
        assert "Err vs truth" in text
        plain = DesignSpaceExplorer(include_infeasible=True)
        assert "Err vs truth" not in plain.render_table(plain.explore())

    def test_accuracy_requires_aquamodem_geometry(self):
        with pytest.raises(ValueError, match="112"):
            DesignSpaceExplorer(accuracy_trials=2, num_delays=56, window_length=112)

    def test_word_length_outside_bit_widths_fills_incrementally(self):
        from repro.core.dse import DesignPoint
        from repro.hardware.devices import VIRTEX4_XC4VSX55

        explorer = DesignSpaceExplorer(bit_widths=(8,), accuracy_trials=2)
        point = DesignPoint(VIRTEX4_XC4VSX55, num_fc_blocks=14, word_length=10)
        evaluation = explorer.evaluate_point(point)
        assert evaluation.mean_normalized_error is not None
