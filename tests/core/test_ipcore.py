"""Unit tests for the Filter-and-Cancel IP core simulator (Figure 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.ipcore import ControlUnit, IPCoreConfig, IPCoreSimulator, QGenBlock
from repro.core.ipcore.fc_block import FilterAndCancelBlock
from repro.core.matching_pursuit import matching_pursuit


class TestControlUnitCycleModel:
    def test_fully_parallel_cycle_count(self):
        control = ControlUnit(num_delays=112, window_length=224, num_fc_blocks=112, num_paths=6)
        assert control.columns_per_block == 1
        assert control.total_cycles() == 248  # 224 + 6 * 4

    def test_serial_cycle_count(self):
        control = ControlUnit(num_delays=112, window_length=224, num_fc_blocks=1, num_paths=6)
        assert control.total_cycles() == 112 * 248

    def test_cycles_scale_with_serialization(self):
        cycles = {
            p: ControlUnit(112, 224, p, 6).total_cycles() for p in (1, 2, 4, 8, 14, 28, 56, 112)
        }
        for p, c in cycles.items():
            assert c == cycles[112] * (112 // p)

    def test_schedule_breakdown_sums_to_total(self):
        control = ControlUnit(112, 224, 14, 6, drain_cycles=5)
        breakdown = control.schedule()
        assert breakdown.total_cycles == (
            breakdown.matched_filter_cycles + breakdown.iteration_cycles + breakdown.drain_cycles
        )
        assert breakdown.as_dict()["total"] == breakdown.total_cycles

    def test_non_divisor_parallelism_rejected(self):
        with pytest.raises(ValueError):
            ControlUnit(num_delays=112, window_length=224, num_fc_blocks=13, num_paths=6)

    def test_qgen_latency_adds_per_iteration(self):
        base = ControlUnit(112, 224, 112, 6).total_cycles()
        with_qgen = ControlUnit(112, 224, 112, 6, qgen_cycles_per_iteration=7).total_cycles()
        assert with_qgen == base + 6 * 7


class TestQGenBlock:
    def test_selects_maximum(self):
        qgen = QGenBlock()
        decision = qgen.select([(0, 1.0, 1.0 + 0j), (5, 3.0, 2.0 + 0j), (9, 2.0, 0.5 + 0j)])
        assert decision.index == 5
        assert decision.coefficient == 2.0 + 0j

    def test_excludes_already_selected(self):
        qgen = QGenBlock()
        qgen.select([(5, 3.0, 1.0 + 0j), (2, 1.0, 1.0 + 0j)])
        second = qgen.select([(5, 3.0, 1.0 + 0j), (2, 1.0, 1.0 + 0j)])
        assert second.index == 2

    def test_reset_clears_history(self):
        qgen = QGenBlock()
        qgen.select([(1, 1.0, 1.0 + 0j)])
        qgen.reset()
        assert qgen.select([(1, 1.0, 1.0 + 0j)]).index == 1

    def test_all_selected_raises(self):
        qgen = QGenBlock()
        qgen.select([(1, 1.0, 1.0 + 0j)])
        with pytest.raises(ValueError):
            qgen.select([(1, 1.0, 1.0 + 0j)])

    def test_empty_candidates_raises(self):
        with pytest.raises(ValueError):
            QGenBlock().select([])


class TestFilterAndCancelBlock:
    def test_matched_filter_matches_direct_computation(self, small_matrices, rng):
        cols = np.arange(small_matrices.num_delays, dtype=np.int64)
        block = FilterAndCancelBlock(
            0, cols, small_matrices.S, small_matrices.A, small_matrices.a, word_length=16
        )
        received = rng.standard_normal(small_matrices.window_length) * 0.1 + 0j
        block.matched_filter(received)
        expected = small_matrices.S.T @ received
        np.testing.assert_allclose(block.V, expected, rtol=1e-2, atol=1e-3)

    def test_commit_and_ownership(self, small_matrices):
        cols = np.array([2, 3], dtype=np.int64)
        block = FilterAndCancelBlock(
            1, cols, small_matrices.S[:, cols], small_matrices.A[:, cols],
            small_matrices.a[cols], word_length=12,
        )
        assert block.owns(3)
        assert not block.owns(0)
        with pytest.raises(ValueError):
            block.commit(0)

    def test_reset_clears_registers(self, small_matrices):
        cols = np.array([0], dtype=np.int64)
        block = FilterAndCancelBlock(
            0, cols, small_matrices.S[:, cols], small_matrices.A[:, cols],
            small_matrices.a[cols], word_length=8,
        )
        block.matched_filter(np.ones(small_matrices.window_length, dtype=complex))
        block.reset()
        assert np.all(block.V == 0) and np.all(block.F == 0)

    def test_empty_column_set_rejected(self, small_matrices):
        with pytest.raises(ValueError):
            FilterAndCancelBlock(
                0, np.array([], dtype=np.int64),
                small_matrices.S[:, :0], small_matrices.A[:, :0],
                small_matrices.a[:0], word_length=8,
            )


class TestIPCoreSimulator:
    @pytest.mark.parametrize("num_fc_blocks", [1, 14, 112])
    def test_functional_equivalence_to_reference(self, aquamodem_matrices, num_fc_blocks):
        """The partitioned datapath must select the same paths as the reference MP."""
        channel = random_sparse_channel(num_paths=3, max_delay=100, rng=3, min_separation=8)
        received = add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 25.0, rng=4
        )
        core = IPCoreSimulator(
            aquamodem_matrices,
            IPCoreConfig(num_fc_blocks=num_fc_blocks, word_length=16, num_paths=6),
        )
        run = core.estimate(received)
        reference = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        np.testing.assert_array_equal(
            np.sort(run.result.path_indices), np.sort(reference.path_indices)
        )
        np.testing.assert_allclose(
            run.result.coefficients, reference.coefficients, rtol=0.05, atol=1e-3
        )

    def test_parallelism_does_not_change_result(self, aquamodem_matrices):
        """The level of parallelism is a scheduling choice; the estimate is identical."""
        channel = random_sparse_channel(num_paths=4, max_delay=100, rng=8, min_separation=6)
        received = aquamodem_matrices.synthesize(channel.coefficient_vector(112))
        results = []
        for p in (1, 14, 112):
            core = IPCoreSimulator(
                aquamodem_matrices, IPCoreConfig(num_fc_blocks=p, word_length=8, num_paths=6)
            )
            results.append(core.estimate(received).result)
        for other in results[1:]:
            np.testing.assert_allclose(results[0].coefficients, other.coefficients, atol=1e-12)
            np.testing.assert_array_equal(results[0].path_indices, other.path_indices)

    def test_cycle_counts_match_control_unit(self, aquamodem_matrices):
        for p in (1, 14, 112):
            core = IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=p))
            run = core.estimate(np.ones(224, dtype=complex))
            assert run.total_cycles == core.cycle_count()
            assert run.total_cycles == 248 * (112 // p)

    def test_dsp48_usage(self, aquamodem_matrices):
        core = IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=112))
        assert core.total_dsp48 == 224  # the paper's stated requirement
        serial = IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=1))
        assert serial.total_dsp48 == 2

    def test_non_divisor_parallelism_rejected(self, aquamodem_matrices):
        with pytest.raises(ValueError):
            IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=13))

    def test_too_many_paths_rejected(self, small_matrices):
        with pytest.raises(ValueError):
            IPCoreSimulator(small_matrices, IPCoreConfig(num_fc_blocks=1, num_paths=1000))

    def test_column_partition_covers_all_delays(self, aquamodem_matrices):
        core = IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=14))
        covered = np.concatenate([b.column_indices for b in core.blocks])
        np.testing.assert_array_equal(np.sort(covered), np.arange(112))
        assert all(b.num_columns == 8 for b in core.blocks)
