"""Unit tests for the Filter-and-Cancel IP core simulator (Figure 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.core.ipcore import (
    ControlUnit,
    CoreRegisters,
    IPCoreConfig,
    IPCoreSimulator,
    QGenBlock,
)
from repro.core.ipcore.fc_block import FilterAndCancelBlock
from repro.core.matching_pursuit import matching_pursuit


class TestControlUnitCycleModel:
    def test_fully_parallel_cycle_count(self):
        control = ControlUnit(num_delays=112, window_length=224, num_fc_blocks=112, num_paths=6)
        assert control.columns_per_block == 1
        assert control.total_cycles() == 248  # 224 + 6 * 4

    def test_serial_cycle_count(self):
        control = ControlUnit(num_delays=112, window_length=224, num_fc_blocks=1, num_paths=6)
        assert control.total_cycles() == 112 * 248

    def test_cycles_scale_with_serialization(self):
        cycles = {
            p: ControlUnit(112, 224, p, 6).total_cycles() for p in (1, 2, 4, 8, 14, 28, 56, 112)
        }
        for p, c in cycles.items():
            assert c == cycles[112] * (112 // p)

    def test_schedule_breakdown_sums_to_total(self):
        control = ControlUnit(112, 224, 14, 6, drain_cycles=5)
        breakdown = control.schedule()
        assert breakdown.total_cycles == (
            breakdown.matched_filter_cycles + breakdown.iteration_cycles + breakdown.drain_cycles
        )
        assert breakdown.as_dict()["total"] == breakdown.total_cycles

    def test_non_divisor_parallelism_rejected(self):
        with pytest.raises(ValueError):
            ControlUnit(num_delays=112, window_length=224, num_fc_blocks=13, num_paths=6)

    def test_qgen_latency_adds_per_iteration(self):
        base = ControlUnit(112, 224, 112, 6).total_cycles()
        with_qgen = ControlUnit(112, 224, 112, 6, qgen_cycles_per_iteration=7).total_cycles()
        assert with_qgen == base + 6 * 7


class TestCoreRegisters:
    def test_scalar_layout(self):
        registers = CoreRegisters.zeros(12)
        assert registers.V.shape == (12,)
        assert not registers.batched
        assert registers.num_delays == 12

    def test_batched_layout(self):
        registers = CoreRegisters.zeros(12, trials=5)
        assert registers.Q.shape == (5, 12)
        assert registers.batched
        assert registers.num_delays == 12

    def test_empty_batch_is_valid(self):
        registers = CoreRegisters.zeros(12, trials=0)
        assert registers.V.shape == (0, 12)


class TestQGenBlock:
    def make(self, num_delays: int = 10) -> QGenBlock:
        return QGenBlock(np.zeros(num_delays, dtype=bool))

    def test_selects_maximum(self):
        qgen = self.make()
        decision = qgen.select([(0, 1.0, 1.0 + 0j), (5, 3.0, 2.0 + 0j), (9, 2.0, 0.5 + 0j)])
        assert decision.index == 5
        assert decision.coefficient == 2.0 + 0j
        assert qgen.selected[5]

    def test_excludes_already_selected(self):
        qgen = self.make()
        qgen.select([(5, 3.0, 1.0 + 0j), (2, 1.0, 1.0 + 0j)])
        second = qgen.select([(5, 3.0, 1.0 + 0j), (2, 1.0, 1.0 + 0j)])
        assert second.index == 2
        assert qgen.selection_order == [5, 2]

    def test_reset_clears_history_and_mask(self):
        qgen = self.make()
        qgen.select([(1, 1.0, 1.0 + 0j)])
        qgen.reset()
        assert not qgen.selected.any()
        assert qgen.select([(1, 1.0, 1.0 + 0j)]).index == 1

    def test_all_selected_raises(self):
        qgen = self.make()
        qgen.select([(1, 1.0, 1.0 + 0j)])
        with pytest.raises(ValueError):
            qgen.select([(1, 1.0, 1.0 + 0j)])

    def test_empty_candidates_raises(self):
        with pytest.raises(ValueError):
            self.make().select([])

    def test_first_maximum_tie_break(self):
        """Equal Q values resolve to the earliest index, like np.argmax."""
        qgen = self.make()
        assert qgen.select([(3, 2.0, 0j), (7, 2.0, 0j)]).index == 3

    def test_select_batch_matches_scalar_reduction(self):
        rng = np.random.default_rng(3)
        Q = rng.standard_normal((4, 10))
        selected = np.zeros((4, 10), dtype=bool)
        selected[:, 2] = True
        expected = np.argmax(np.where(selected, -np.inf, Q), axis=1)
        winners = QGenBlock.select_batch(Q, selected)
        np.testing.assert_array_equal(winners, expected)
        assert selected[np.arange(4), winners].all()


class TestFilterAndCancelBlock:
    def block_for(self, matrices, start, stop, word_length=16):
        datapath = FixedPointMatchingPursuit(matrices, word_length=word_length)
        return FilterAndCancelBlock(0, start, stop, datapath)

    def test_stored_matrices_are_global_quantisation_views(self, small_matrices):
        """Block RAM holds windows of the *globally* quantised matrices."""
        datapath = FixedPointMatchingPursuit(small_matrices, word_length=12)
        block = FilterAndCancelBlock(1, 2, 5, datapath)
        np.testing.assert_array_equal(block.S, datapath.S_q[:, 2:5])
        np.testing.assert_array_equal(block.A, datapath.A_q[2:5, :])
        np.testing.assert_array_equal(block.a, datapath.a_q[2:5])
        np.testing.assert_array_equal(block.column_indices, [2, 3, 4])
        assert block.num_columns == 3
        assert block.word_length == 12

    def test_matched_filter_matches_direct_computation(self, small_matrices, rng):
        block = self.block_for(small_matrices, 0, small_matrices.num_delays)
        received = rng.standard_normal(small_matrices.window_length) * 0.1 + 0j
        registers = CoreRegisters.zeros(small_matrices.num_delays)
        r_q, _ = block.datapath.quantize_received(received)
        matched = block.datapath.matched_filter(r_q)
        block.matched_filter(registers, matched, 1.0)
        expected = small_matrices.S.T @ received
        np.testing.assert_allclose(registers.V, expected, rtol=1e-2, atol=1e-3)

    def test_commit_and_ownership(self, small_matrices):
        block = FilterAndCancelBlock(
            1, 2, 4, FixedPointMatchingPursuit(small_matrices, word_length=12)
        )
        assert block.owns(3)
        assert not block.owns(0)
        registers = CoreRegisters.zeros(small_matrices.num_delays)
        with pytest.raises(ValueError, match="not owned"):
            block.commit(registers, 0)

    def test_commit_latches_temporary_coefficient(self, small_matrices):
        block = self.block_for(small_matrices, 0, small_matrices.num_delays)
        registers = CoreRegisters.zeros(small_matrices.num_delays)
        registers.G[3] = 0.5 - 0.25j
        committed = block.commit(registers, 3)
        assert committed == 0.5 - 0.25j
        assert registers.F[3] == 0.5 - 0.25j
        indices, values = block.coefficients(registers)
        np.testing.assert_array_equal(indices, block.column_indices)
        assert values[3] == 0.5 - 0.25j and not np.any(np.delete(values, 3))

    def test_empty_window_rejected(self, small_matrices):
        datapath = FixedPointMatchingPursuit(small_matrices, word_length=8)
        with pytest.raises(ValueError):
            FilterAndCancelBlock(0, 3, 3, datapath)
        with pytest.raises(ValueError):
            FilterAndCancelBlock(0, small_matrices.num_delays, small_matrices.num_delays + 1,
                                 datapath)


class TestIPCoreSimulator:
    @pytest.mark.parametrize("num_fc_blocks", [1, 14, 112])
    def test_functional_equivalence_to_reference(self, aquamodem_matrices, num_fc_blocks):
        """The partitioned datapath must select the same paths as the reference MP."""
        channel = random_sparse_channel(num_paths=3, max_delay=100, rng=3, min_separation=8)
        received = add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 25.0, rng=4
        )
        core = IPCoreSimulator(
            aquamodem_matrices,
            IPCoreConfig(num_fc_blocks=num_fc_blocks, word_length=16, num_paths=6),
        )
        run = core.estimate(received)
        reference = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        # the true channel taps dominate; both datapaths must find them first
        # (the trailing noise-driven picks may legitimately differ under
        # quantisation), and agree on their coefficients within the 16-bit
        # quantisation bound
        true_delays = np.sort(channel.delays)
        np.testing.assert_array_equal(np.sort(run.result.path_indices[:3]), true_delays)
        np.testing.assert_array_equal(np.sort(reference.path_indices[:3]), true_delays)
        np.testing.assert_allclose(
            run.result.coefficients[true_delays],
            reference.coefficients[true_delays],
            rtol=0.01, atol=1e-3,
        )

    def test_parallelism_does_not_change_result(self, aquamodem_matrices):
        """The level of parallelism is a scheduling choice; the estimate is identical."""
        channel = random_sparse_channel(num_paths=4, max_delay=100, rng=8, min_separation=6)
        received = aquamodem_matrices.synthesize(channel.coefficient_vector(112))
        results = []
        for p in (1, 14, 112):
            core = IPCoreSimulator(
                aquamodem_matrices, IPCoreConfig(num_fc_blocks=p, word_length=8, num_paths=6)
            )
            results.append(core.estimate(received).result)
        for other in results[1:]:
            # the refactored datapath makes this exact: == on raw integer codes
            assert other == results[0]

    def test_matches_fixed_point_reference_estimator(self, aquamodem_matrices):
        """IP core == FixedPointMatchingPursuit, == on the raw integer codes."""
        channel = random_sparse_channel(num_paths=4, max_delay=100, rng=5, min_separation=6)
        received = add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 20.0, rng=6
        )
        core = IPCoreSimulator(
            aquamodem_matrices, IPCoreConfig(num_fc_blocks=14, word_length=12, num_paths=6)
        )
        reference = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=12, num_paths=6
        )
        assert core.estimate(received).result == reference.estimate(received)

    def test_repeated_estimate_is_stateless(self, aquamodem_matrices):
        """Regression: a second estimate on one instance starts from fresh
        registers — never from the previous call's stale decision metrics."""
        channel = random_sparse_channel(num_paths=3, max_delay=100, rng=11, min_separation=6)
        received = add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 20.0, rng=12
        )
        core = IPCoreSimulator(
            aquamodem_matrices, IPCoreConfig(num_fc_blocks=14, word_length=8, num_paths=6)
        )
        first = core.estimate(received)
        second = core.estimate(received)
        assert second.result == first.result
        # and an interleaved different input cannot leak state either
        core.estimate(np.ones(224, dtype=complex))
        assert core.estimate(received).result == first.result

    def test_cycle_counts_match_control_unit(self, aquamodem_matrices):
        for p in (1, 14, 112):
            core = IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=p))
            run = core.estimate(np.ones(224, dtype=complex))
            assert run.total_cycles == core.cycle_count()
            assert run.total_cycles == 248 * (112 // p)

    def test_dsp48_usage(self, aquamodem_matrices):
        core = IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=112))
        assert core.total_dsp48 == 224  # the paper's stated requirement
        serial = IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=1))
        assert serial.total_dsp48 == 2

    def test_non_divisor_parallelism_rejected(self, aquamodem_matrices):
        with pytest.raises(ValueError):
            IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=13))

    def test_too_many_paths_rejected(self, small_matrices):
        with pytest.raises(ValueError):
            IPCoreSimulator(small_matrices, IPCoreConfig(num_fc_blocks=1, num_paths=1000))

    def test_column_partition_covers_all_delays(self, aquamodem_matrices):
        core = IPCoreSimulator(aquamodem_matrices, IPCoreConfig(num_fc_blocks=14))
        covered = np.concatenate([b.column_indices for b in core.blocks])
        np.testing.assert_array_equal(np.sort(covered), np.arange(112))
        assert all(b.num_columns == 8 for b in core.blocks)
        for index in (0, 55, 111):
            assert core.owner_of(index).owns(index)

    def test_quantiser_modes_forwarded_to_datapath(self, small_matrices):
        from repro.fixedpoint.quantize import OverflowMode, RoundingMode

        core = IPCoreSimulator(
            small_matrices,
            IPCoreConfig(num_fc_blocks=1, word_length=8,
                         rounding="truncate", overflow="wrap"),
        )
        assert core.datapath.rounding is RoundingMode.TRUNCATE
        assert core.datapath.overflow is OverflowMode.WRAP
        assert core.word_length == 8
        # the shared formats the blocks re-quantise through
        assert core.datapath.input_format.word_length == 8
        assert core.datapath.accumulator_format.word_length == 24
        assert core.datapath.matched_filter_exact
