"""Unit tests for the Matching Pursuits reference implementation (Figure 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.matching_pursuit import matching_pursuit, matching_pursuit_naive
from repro.core.metrics import normalized_channel_error, residual_energy_ratio


class TestSinglePathRecovery:
    @pytest.mark.parametrize("delay", [0, 1, 37, 64, 111])
    def test_exact_delay_and_gain_recovery(self, aquamodem_matrices, delay):
        gain = 0.8 * np.exp(1j * 1.1)
        f_true = np.zeros(112, dtype=complex)
        f_true[delay] = gain
        received = aquamodem_matrices.synthesize(f_true)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=1)
        assert result.path_indices[0] == delay
        assert result.path_gains[0] == pytest.approx(gain, rel=1e-9)
        np.testing.assert_allclose(result.coefficients, f_true, atol=1e-9)

    def test_real_negative_gain(self, aquamodem_matrices):
        f_true = np.zeros(112, dtype=complex)
        f_true[50] = -0.6
        received = aquamodem_matrices.synthesize(f_true)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=1)
        assert result.path_indices[0] == 50
        assert result.path_gains[0] == pytest.approx(-0.6)


class TestMultipathRecovery:
    def test_noiseless_support_recovery(self, aquamodem_matrices):
        channel = random_sparse_channel(num_paths=4, max_delay=100, rng=0, min_separation=6)
        f_true = channel.coefficient_vector(112)
        received = aquamodem_matrices.synthesize(f_true)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        assert set(channel.delays.tolist()).issubset(set(result.path_indices.tolist()))

    def test_strongest_path_found_first(self, aquamodem_matrices):
        f_true = np.zeros(112, dtype=complex)
        f_true[10] = 1.0
        f_true[60] = 0.4
        received = aquamodem_matrices.synthesize(f_true)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=2)
        assert result.path_indices[0] == 10
        assert result.path_indices[1] == 60

    def test_noiseless_residual_is_small(self, aquamodem_matrices):
        channel = random_sparse_channel(num_paths=3, max_delay=90, rng=2, min_separation=8)
        f_true = channel.coefficient_vector(112)
        received = aquamodem_matrices.synthesize(f_true)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        assert residual_energy_ratio(received, aquamodem_matrices.S, result.coefficients) < 0.05

    def test_moderate_noise_recovery(self, aquamodem_matrices):
        channel = random_sparse_channel(num_paths=3, max_delay=90, rng=5, min_separation=8)
        f_true = channel.coefficient_vector(112)
        received = add_noise_for_snr(aquamodem_matrices.synthesize(f_true), 20.0, rng=6)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        assert normalized_channel_error(f_true, result.coefficients) < 0.35
        # the three true delays should be among the six strongest estimates (± 1 sample)
        found = sum(
            1 for d in channel.delays
            if np.min(np.abs(result.path_indices - d)) <= 1
        )
        assert found == channel.num_paths

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_noiseless_recovery_property(self, aquamodem_matrices, seed):
        """What greedy MP actually guarantees on a correlated dictionary.

        The composite waveform has autocorrelation sidelobes at multiples of
        the m-sequence period (7 chips = 14 samples), so exact tap-for-tap
        support recovery is NOT guaranteed — the greedy pursuit sometimes
        spends a pick on a sidelobe of a strong tap.  What does hold, and what
        the RAKE receiver relies on, is that (a) the strongest arrival is
        located to within one sample and (b) the six estimated components
        explain the large majority of the received energy.
        """
        channel = random_sparse_channel(num_paths=3, max_delay=100, rng=seed, min_separation=10)
        f_true = channel.coefficient_vector(112)
        received = aquamodem_matrices.synthesize(f_true)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        strongest_delay, _ = channel.strongest_path()
        assert np.min(np.abs(result.path_indices - strongest_delay)) <= 1
        assert residual_energy_ratio(received, aquamodem_matrices.S, result.coefficients) < 0.3


class TestAlgorithmStructure:
    def test_exactly_num_paths_nonzero_coefficients(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        assert np.count_nonzero(result.coefficients) == 6
        assert result.num_paths == 6

    def test_selected_indices_are_unique(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=20)
        assert len(set(result.path_indices.tolist())) == 20

    def test_decision_history_positive(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        assert np.all(result.decision_history > 0)

    def test_as_delay_gain_pairs_sorted(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=4)
        pairs = result.as_delay_gain_pairs()
        delays = [d for d, _ in pairs]
        assert delays == sorted(delays)

    def test_explicit_matrices_equivalent(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        via_object = matching_pursuit(received, aquamodem_matrices, num_paths=3)
        via_arrays = matching_pursuit(
            received,
            S=aquamodem_matrices.S,
            A=aquamodem_matrices.A,
            a=aquamodem_matrices.a,
            num_paths=3,
        )
        np.testing.assert_allclose(via_object.coefficients, via_arrays.coefficients)

    def test_input_validation(self, aquamodem_matrices):
        with pytest.raises(ValueError):
            matching_pursuit(np.zeros(100, dtype=complex), aquamodem_matrices)
        with pytest.raises(ValueError):
            matching_pursuit(np.zeros(224, dtype=complex), aquamodem_matrices, num_paths=0)
        with pytest.raises(ValueError):
            matching_pursuit(np.zeros(224, dtype=complex), aquamodem_matrices, num_paths=113)
        with pytest.raises(ValueError):
            matching_pursuit(np.zeros(224, dtype=complex))
        with pytest.raises(ValueError):
            matching_pursuit(
                np.zeros(224, dtype=complex), aquamodem_matrices, S=aquamodem_matrices.S
            )


class TestNaiveEquivalence:
    """The loop transcription of Figure 3 must agree with the vectorised version."""

    def test_agreement_on_small_geometry(self, small_matrices, rng):
        received = rng.standard_normal(small_matrices.window_length) + 1j * rng.standard_normal(
            small_matrices.window_length
        )
        fast = matching_pursuit(received, small_matrices, num_paths=4)
        slow = matching_pursuit_naive(received, small_matrices, num_paths=4)
        np.testing.assert_allclose(fast.coefficients, slow.coefficients, atol=1e-12)
        np.testing.assert_array_equal(fast.path_indices, slow.path_indices)

    def test_agreement_on_aquamodem_geometry(self, aquamodem_matrices):
        rng = np.random.default_rng(77)
        channel = random_sparse_channel(num_paths=4, max_delay=100, rng=rng, min_separation=4)
        received = add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 15.0, rng=rng
        )
        fast = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        slow = matching_pursuit_naive(received, aquamodem_matrices, num_paths=6)
        np.testing.assert_allclose(fast.coefficients, slow.coefficients, atol=1e-9)
        np.testing.assert_array_equal(fast.path_indices, slow.path_indices)
        np.testing.assert_allclose(fast.decision_history, slow.decision_history, rtol=1e-9)
