"""Scalar-vs-batch equivalence of the fixed-point MP datapath.

Fixed-point arithmetic is exact integer math, so the batched datapath is not
allowed to drift from the scalar executable specification by even one LSB:
every comparison here is ``==`` on **raw integer codes** (and on the exact
floats they scale to), across word lengths {2, 8, 12, 16, 32}, both rounding
modes and both overflow behaviours — the strongest equivalence claim in the
repository.  The engine-level tests additionally pin the batched sweep's
records against :func:`repro.experiments.runner.run_sweep`, record for
record.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchFixedPointMPEngine
from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.experiments import get_scenario, run_sweep
from repro.fixedpoint.quantize import OverflowMode, RoundingMode

#: 23/24 straddle the matched-filter exactness bound, where estimate_batch
#: switches from one exact matmul to the per-trial matvec fallback.
WORD_LENGTHS = (2, 8, 12, 16, 23, 24, 32)


@pytest.fixture(scope="module")
def received_batch() -> np.ndarray:
    """A trial batch covering the datapath's corner cases.

    Random rows at several magnitudes plus an all-zero row (dynamic-range
    scale of zero) and a near-saturation row.
    """
    rng = np.random.default_rng(2024)
    batch = rng.standard_normal((7, 224)) + 1j * rng.standard_normal((7, 224))
    batch[2] = 0.0                      # all-zero received vector
    batch[3] *= 1e-5                    # tiny dynamic range
    batch[4] *= 64.0                    # large dynamic range
    batch[5] = np.round(batch[5] * 4) / 4   # exactly-representable values
    return batch


def assert_estimates_equal(scalar, batched) -> None:
    """Raw integer codes, indices, scales and floats must all match with ==."""
    assert np.array_equal(scalar.path_indices, batched.path_indices)
    # the heart of the contract: exact integer codes, no float tolerance
    assert np.array_equal(scalar.raw_real, batched.raw_real)
    assert np.array_equal(scalar.raw_imag, batched.raw_imag)
    assert np.array_equal(scalar.raw_decisions, batched.raw_decisions)
    # scales are powers-of-two products; floats reconstruct identically
    assert scalar.coefficient_scale == batched.coefficient_scale
    assert scalar.decision_scale == batched.decision_scale
    assert scalar.input_scale == batched.input_scale
    assert np.array_equal(scalar.coefficients, batched.coefficients)
    assert np.array_equal(scalar.path_gains, batched.path_gains)
    assert np.array_equal(scalar.decision_history, batched.decision_history)
    assert scalar.accumulator_format == batched.accumulator_format


class TestScalarBatchEquivalence:
    @pytest.mark.parametrize("word_length", WORD_LENGTHS)
    @pytest.mark.parametrize("rounding", list(RoundingMode))
    @pytest.mark.parametrize("overflow", list(OverflowMode))
    def test_raw_codes_identical(
        self, aquamodem_matrices, received_batch, word_length, rounding, overflow
    ):
        estimator = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=word_length, num_paths=6,
            rounding=rounding, overflow=overflow,
        )
        batched = estimator.estimate_batch(received_batch)
        for trial in range(received_batch.shape[0]):
            scalar = estimator.estimate(received_batch[trial])
            assert_estimates_equal(scalar, batched[trial])

    @pytest.mark.parametrize("word_length", (2, 8, 32))
    def test_full_delay_sweep_identical(
        self, aquamodem_matrices, received_batch, word_length
    ):
        """num_paths == num_delays: every delay selected, still bit-exact."""
        estimator = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=word_length,
            num_paths=aquamodem_matrices.num_delays,
        )
        batched = estimator.estimate_batch(received_batch[:3])
        for trial in range(3):
            scalar = estimator.estimate(received_batch[trial])
            assert_estimates_equal(scalar, batched[trial])
            assert sorted(scalar.path_indices.tolist()) == list(
                range(aquamodem_matrices.num_delays)
            )

    def test_single_trial_batch(self, aquamodem_matrices, received_batch):
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8)
        batched = estimator.estimate_batch(received_batch[:1])
        assert batched.num_trials == 1
        assert_estimates_equal(estimator.estimate(received_batch[0]), batched[0])

    def test_empty_batch(self, aquamodem_matrices):
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8)
        batched = estimator.estimate_batch(np.zeros((0, 224), dtype=np.complex128))
        assert batched.num_trials == 0
        assert batched.coefficients.shape == (0, aquamodem_matrices.num_delays)
        assert batched.path_indices.shape == (0, 6)
        assert batched.unbatch() == []

    def test_raw_codes_reconstruct_coefficients(self, aquamodem_matrices, received_batch):
        """The raw codes ARE the estimate: scaling them back gives the floats."""
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=12)
        batched = estimator.estimate_batch(received_batch)
        resolution = batched.accumulator_format.resolution
        scale = batched.coefficient_scale[:, np.newaxis]
        rebuilt = (
            batched.raw_real.astype(np.float64) * resolution * scale
            + 1j * batched.raw_imag.astype(np.float64) * resolution * scale
        )
        assert np.allclose(rebuilt, batched.coefficients, rtol=1e-12, atol=0.0)

    def test_estimate_equality_operator(self, aquamodem_matrices, received_batch):
        """== on estimates compares the integer state (and never raises)."""
        narrow = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8)
        wide = FixedPointMatchingPursuit(aquamodem_matrices, word_length=12)
        assert narrow.estimate(received_batch[0]) == narrow.estimate(received_batch[0])
        assert narrow.estimate(received_batch[0]) != wide.estimate(received_batch[0])
        assert narrow.estimate(received_batch[0]) != narrow.estimate(received_batch[1])
        assert narrow.estimate(received_batch[0]) != "not an estimate"
        batch_a = narrow.estimate_batch(received_batch[:2])
        batch_b = narrow.estimate_batch(received_batch[:2])
        assert batch_a == batch_b
        assert batch_a != wide.estimate_batch(received_batch[:2])
        assert batch_a[0] == narrow.estimate(received_batch[0])

    def test_raw_codes_within_accumulator_range(self, aquamodem_matrices, received_batch):
        for overflow in OverflowMode:
            estimator = FixedPointMatchingPursuit(
                aquamodem_matrices, word_length=8, overflow=overflow
            )
            batched = estimator.estimate_batch(received_batch)
            fmt = batched.accumulator_format
            for raw in (batched.raw_real, batched.raw_imag, batched.raw_decisions):
                assert raw.min(initial=0) >= fmt.raw_min
                assert raw.max(initial=0) <= fmt.raw_max


class TestEngineSweepEquivalence:
    @pytest.fixture(scope="class")
    def spec(self):
        return (
            get_scenario("fixedpoint-bitwidth").spec
            .with_axis("word_length", (4, 8, 12))
            .with_seed(base_seed=11, replicates=4)
        )

    def test_engine_records_equal_sweep_records(self, spec):
        """The batched engine is a drop-in for run_sweep: records compare ==."""
        sweep = run_sweep(spec)
        engine = BatchFixedPointMPEngine().run_spec(spec)
        assert engine.records == sweep.records

    def test_engine_scalar_fallback_equal_sweep(self, spec):
        engine = BatchFixedPointMPEngine().run_spec(spec, batch=False)
        assert engine.records == run_sweep(spec).records

    def test_engine_rejects_foreign_scenarios(self):
        foreign = get_scenario("platform-energy").spec
        with pytest.raises(ValueError, match="fixedpoint-bitwidth"):
            BatchFixedPointMPEngine().run_spec(foreign)

    def test_trial_level_batch_axis_identical(self, spec):
        """`--set batch=true` (one-row batches inside trials) changes nothing."""
        scalar = run_sweep(spec)
        batched = run_sweep(spec.with_base(batch=True))
        strip = lambda record: {k: v for k, v in record.items() if k != "batch"}  # noqa: E731
        assert [strip(r) for r in batched.records] == [strip(r) for r in scalar.records]
