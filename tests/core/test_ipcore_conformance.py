"""Three-way cross-layer conformance: IP core == fixed-point MP == reference.

The acceptance contract of the IP-core layer: the scalar
:class:`IPCoreSimulator`, the batched :class:`BatchIPCoreEngine` and
:class:`FixedPointMatchingPursuit` are pinned to **identical quantised
codes** (``==`` on raw integers, no float tolerances) at P=1 across
w ∈ {2, 8, 12, 16, 32}, batched == scalar at *every* P of the sweep, and the
float :func:`matching_pursuit` reference is matched within the documented
quantisation bounds.  The sweep-level pin additionally checks
``repro sweep ipcore-parallelism`` produces identical records with
``batch=True`` and ``batch=False``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.core.ipcore import BatchIPCoreEngine, IPCoreConfig, IPCoreSimulator
from repro.core.ipcore.conformance import (
    DEFAULT_PARALLELISM_LEVELS,
    DEFAULT_WORD_LENGTHS,
    FLOAT_ERROR_BOUNDS,
    check_conformance,
)
from repro.experiments import get_scenario, run_sweep
from repro.fixedpoint.quantize import OverflowMode, RoundingMode

PARALLELISM = DEFAULT_PARALLELISM_LEVELS   # (1, 2, 4, 8, 14, 28, 56, 112)
WORD_LENGTHS = DEFAULT_WORD_LENGTHS        # (2, 8, 12, 16, 32)


@pytest.fixture(scope="module")
def received_batch(aquamodem_matrices) -> np.ndarray:
    """Three sparse-channel problems at 25 dB SNR, shared by every cell."""
    rows = []
    for seed in range(3):
        channel = random_sparse_channel(
            num_paths=4, max_delay=100, rng=seed, min_separation=4
        )
        rows.append(add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)),
            25.0, rng=seed + 100,
        ))
    return np.stack(rows)


@pytest.fixture(scope="module")
def report(aquamodem_matrices, received_batch):
    return check_conformance(aquamodem_matrices, received_batch)


class TestThreeWayConformance:
    @pytest.mark.parametrize("word_length", WORD_LENGTHS)
    def test_ipcore_equals_fixedpoint_at_p1(
        self, aquamodem_matrices, received_batch, word_length
    ):
        """P=1 with matching modes: the two machines produce identical codes."""
        core = IPCoreSimulator(
            aquamodem_matrices,
            IPCoreConfig(num_fc_blocks=1, word_length=word_length, num_paths=6),
        )
        reference = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=word_length, num_paths=6
        )
        for received in received_batch:
            run = core.estimate(received)
            estimate = reference.estimate(received)
            assert run.result == estimate
            # spell the contract out: raw integer codes, compared exactly
            np.testing.assert_array_equal(run.result.raw_real, estimate.raw_real)
            np.testing.assert_array_equal(run.result.raw_imag, estimate.raw_imag)
            np.testing.assert_array_equal(run.result.raw_decisions, estimate.raw_decisions)

    def test_full_grid_is_exact(self, report):
        """Every (P, w) cell: ipcore == fixed-point MP and batch == scalar."""
        assert len(report.cells) == len(PARALLELISM) * len(WORD_LENGTHS)
        assert report.failures() == []
        assert report.all_exact
        for word_length in WORD_LENGTHS:
            for parallelism in PARALLELISM:
                cell = report.cell(parallelism, word_length)
                assert cell.ipcore_equals_fixedpoint, (parallelism, word_length)
                assert cell.batch_equals_scalar, (parallelism, word_length)

    @pytest.mark.parametrize("num_fc_blocks", PARALLELISM)
    def test_batched_equals_scalar_at_every_p(
        self, aquamodem_matrices, received_batch, num_fc_blocks
    ):
        engine = BatchIPCoreEngine(
            aquamodem_matrices,
            IPCoreConfig(num_fc_blocks=num_fc_blocks, word_length=12, num_paths=6),
        )
        batch = engine.estimate_batch(received_batch)
        assert batch.total_cycles == engine.cycle_count()
        for trial in range(received_batch.shape[0]):
            scalar = engine.core.estimate(received_batch[trial])
            assert batch.result[trial] == scalar.result
            assert batch[trial].schedule == scalar.schedule

    def test_float_reference_within_documented_bounds(self, report):
        """The float reference is matched within FLOAT_ERROR_BOUNDS per w."""
        assert report.all_within_float_bounds
        for word_length in WORD_LENGTHS:
            cell = report.cell(1, word_length)
            assert cell.max_error_vs_float <= FLOAT_ERROR_BOUNDS[word_length]
        # and the bounds are meaningful: error shrinks as the word grows
        errors = [report.cell(1, w).max_error_vs_float for w in sorted(WORD_LENGTHS)]
        assert errors[-1] < errors[0]
        assert report.cell(1, 32).max_error_vs_float < 1e-7

    def test_cycles_fall_as_parallelism_grows(self, report):
        cycles = [report.cell(p, 8).total_cycles for p in PARALLELISM]
        assert cycles == sorted(cycles, reverse=True)
        assert cycles[0] == 27_776 and cycles[-1] == 248

    def test_conformance_holds_under_other_quantiser_modes(
        self, aquamodem_matrices, received_batch
    ):
        """The contract is mode-parametric, not an artefact of the defaults."""
        report = check_conformance(
            aquamodem_matrices, received_batch,
            parallelism_levels=(1, 14, 112), word_lengths=(8,),
            rounding=RoundingMode.TRUNCATE, overflow=OverflowMode.WRAP,
        )
        assert report.all_exact

    def test_cell_lookup_raises_on_unknown_point(self, report):
        with pytest.raises(KeyError):
            report.cell(13, 8)


class TestSweepLevelConformance:
    @pytest.fixture(scope="class")
    def spec(self):
        return (
            get_scenario("ipcore-parallelism").spec
            .with_axis("num_fc_blocks", (1, 14, 112))
            .with_axis("word_length", (8, 16))
            .with_seed(base_seed=5, replicates=2)
        )

    @staticmethod
    def _strip_batch(records):
        return [{k: v for k, v in record.items() if k != "batch"} for record in records]

    def test_sweep_runs_and_batch_axis_changes_nothing(self, spec):
        """`repro sweep ipcore-parallelism` end-to-end: batch=True/False
        produce identical records (modulo the recorded axis value itself)."""
        batched = run_sweep(spec.with_base(batch=True))
        scalar = run_sweep(spec.with_base(batch=False))
        assert batched.stats.num_trials == spec.num_trials
        assert self._strip_batch(batched.records) == self._strip_batch(scalar.records)

    def test_accuracy_invariant_and_cycles_fall_across_p(self, spec):
        result = run_sweep(spec.with_base(batch=True))
        by_p: dict[int, list] = {}
        for record in result.records:
            if record["word_length"] == 8:
                by_p.setdefault(record["num_fc_blocks"], []).append(record)
        baseline = sorted(
            (r["seed"], r["normalized_error"], r["error_vs_float"]) for r in by_p[1]
        )
        for parallelism, records in by_p.items():
            assert sorted(
                (r["seed"], r["normalized_error"], r["error_vs_float"]) for r in records
            ) == baseline
            assert all(r["total_cycles"] == 27_776 // parallelism for r in records)
