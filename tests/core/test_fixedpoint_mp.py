"""Unit tests for the fixed-point Matching Pursuits datapath model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.fixedpoint_mp import FixedPointMatchingPursuit
from repro.core.matching_pursuit import matching_pursuit
from repro.core.metrics import normalized_channel_error


@pytest.fixture(scope="module")
def noiseless_case(request):
    return None


class TestFixedPointMatchingPursuit:
    @pytest.mark.parametrize("bits", [8, 12, 16])
    def test_single_path_recovery(self, aquamodem_matrices, bits):
        f_true = np.zeros(112, dtype=complex)
        f_true[42] = 0.7 - 0.2j
        received = aquamodem_matrices.synthesize(f_true)
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=bits, num_paths=1)
        result = estimator.estimate(received)
        assert result.path_indices[0] == 42
        assert abs(result.path_gains[0] - (0.7 - 0.2j)) < 0.05

    @pytest.mark.parametrize(
        "bits, tolerance",
        [(8, 0.30), (12, 0.15), (16, 0.10)],
    )
    def test_close_to_float_reference(self, aquamodem_matrices, bits, tolerance):
        """Deviation from the float reference shrinks as the word length grows.

        At 8 bits the weakest (noise-level) taps can swap, so the tolerance is
        looser; what matters for the paper's claim is the true-channel error,
        checked separately in ``test_paper_claim_8_bits_sufficient``.
        """
        channel = random_sparse_channel(num_paths=3, max_delay=90, rng=1, min_separation=8)
        received = add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 25.0, rng=2
        )
        reference = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        fixed = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=bits, num_paths=6
        ).estimate(received)
        error = normalized_channel_error(reference.coefficients, fixed.coefficients)
        assert error < tolerance

    def test_paper_claim_8_bits_sufficient(self, aquamodem_matrices):
        """Section IV.C: 8-10 bits with dynamic-range scaling give accurate estimates."""
        errors = {}
        for bits in (4, 8):
            per_trial = []
            for seed in range(5):
                channel = random_sparse_channel(
                    num_paths=3, max_delay=90, rng=100 + seed, min_separation=8
                )
                f_true = channel.coefficient_vector(112)
                received = aquamodem_matrices.synthesize(f_true)
                estimate = FixedPointMatchingPursuit(
                    aquamodem_matrices, word_length=bits, num_paths=6
                ).estimate(received)
                per_trial.append(normalized_channel_error(f_true, estimate.coefficients))
            errors[bits] = float(np.mean(per_trial))
        # 8-bit estimation is accurate; 4-bit is clearly degraded
        assert errors[8] < 0.15
        assert errors[4] > 2 * errors[8]

    def test_low_precision_degrades_gracefully(self, aquamodem_matrices):
        f_true = np.zeros(112, dtype=complex)
        f_true[10] = 1.0
        received = aquamodem_matrices.synthesize(f_true)
        result = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=3, num_paths=1
        ).estimate(received)
        # even at 3 bits the strongest single path should still be located
        assert result.path_indices[0] == 10

    def test_num_nonzero_equals_num_paths(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        result = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=8, num_paths=5
        ).estimate(received)
        assert np.count_nonzero(result.coefficients) == 5
        assert len(set(result.path_indices.tolist())) == 5

    def test_storage_bits_matches_paper_figure(self, aquamodem_matrices):
        """Section IV.C quotes 1208 kbit for 32-bit storage of S, A and a."""
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=32)
        assert estimator.storage_bits == pytest.approx(1208e3, rel=0.01)
        eight_bit = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8)
        assert eight_bit.storage_bits == estimator.storage_bits // 4

    def test_validation(self, aquamodem_matrices):
        with pytest.raises(ValueError):
            FixedPointMatchingPursuit(aquamodem_matrices, word_length=1)
        with pytest.raises(ValueError):
            FixedPointMatchingPursuit(aquamodem_matrices, num_paths=0)
        with pytest.raises(ValueError):
            FixedPointMatchingPursuit(aquamodem_matrices, num_paths=200)

    def test_received_length_validated(self, aquamodem_matrices):
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8)
        with pytest.raises(ValueError):
            estimator.estimate(np.zeros(100, dtype=complex))
