"""Unit tests for the fixed-point Matching Pursuits datapath model."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.fixedpoint_mp import FixedPointEstimate, FixedPointMatchingPursuit
from repro.core.matching_pursuit import matching_pursuit
from repro.core.metrics import normalized_channel_error
from repro.fixedpoint.quantize import OverflowMode, RoundingMode


@pytest.fixture(scope="module")
def noiseless_case(request):
    return None


class TestFixedPointMatchingPursuit:
    @pytest.mark.parametrize("bits", [8, 12, 16])
    def test_single_path_recovery(self, aquamodem_matrices, bits):
        f_true = np.zeros(112, dtype=complex)
        f_true[42] = 0.7 - 0.2j
        received = aquamodem_matrices.synthesize(f_true)
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=bits, num_paths=1)
        result = estimator.estimate(received)
        assert result.path_indices[0] == 42
        assert abs(result.path_gains[0] - (0.7 - 0.2j)) < 0.05

    @pytest.mark.parametrize(
        "bits, tolerance",
        [(8, 0.30), (12, 0.15), (16, 0.10)],
    )
    def test_close_to_float_reference(self, aquamodem_matrices, bits, tolerance):
        """Deviation from the float reference shrinks as the word length grows.

        At 8 bits the weakest (noise-level) taps can swap, so the tolerance is
        looser; what matters for the paper's claim is the true-channel error,
        checked separately in ``test_paper_claim_8_bits_sufficient``.
        """
        channel = random_sparse_channel(num_paths=3, max_delay=90, rng=1, min_separation=8)
        received = add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 25.0, rng=2
        )
        reference = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        fixed = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=bits, num_paths=6
        ).estimate(received)
        error = normalized_channel_error(reference.coefficients, fixed.coefficients)
        assert error < tolerance

    def test_paper_claim_8_bits_sufficient(self, aquamodem_matrices):
        """Section IV.C: 8-10 bits with dynamic-range scaling give accurate estimates."""
        errors = {}
        for bits in (4, 8):
            per_trial = []
            for seed in range(5):
                channel = random_sparse_channel(
                    num_paths=3, max_delay=90, rng=100 + seed, min_separation=8
                )
                f_true = channel.coefficient_vector(112)
                received = aquamodem_matrices.synthesize(f_true)
                estimate = FixedPointMatchingPursuit(
                    aquamodem_matrices, word_length=bits, num_paths=6
                ).estimate(received)
                per_trial.append(normalized_channel_error(f_true, estimate.coefficients))
            errors[bits] = float(np.mean(per_trial))
        # 8-bit estimation is accurate; 4-bit is clearly degraded
        assert errors[8] < 0.15
        assert errors[4] > 2 * errors[8]

    def test_low_precision_degrades_gracefully(self, aquamodem_matrices):
        f_true = np.zeros(112, dtype=complex)
        f_true[10] = 1.0
        received = aquamodem_matrices.synthesize(f_true)
        result = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=3, num_paths=1
        ).estimate(received)
        # even at 3 bits the strongest single path should still be located
        assert result.path_indices[0] == 10

    def test_num_nonzero_equals_num_paths(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        result = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=8, num_paths=5
        ).estimate(received)
        assert np.count_nonzero(result.coefficients) == 5
        assert len(set(result.path_indices.tolist())) == 5

    def test_storage_bits_matches_paper_figure(self, aquamodem_matrices):
        """Section IV.C quotes 1208 kbit for 32-bit storage of S, A and a."""
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=32)
        assert estimator.storage_bits == pytest.approx(1208e3, rel=0.01)
        eight_bit = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8)
        assert eight_bit.storage_bits == estimator.storage_bits // 4

    def test_validation(self, aquamodem_matrices):
        with pytest.raises(ValueError):
            FixedPointMatchingPursuit(aquamodem_matrices, word_length=1)
        with pytest.raises(ValueError):
            FixedPointMatchingPursuit(aquamodem_matrices, num_paths=0)
        with pytest.raises(ValueError):
            FixedPointMatchingPursuit(aquamodem_matrices, num_paths=200)

    def test_received_length_validated(self, aquamodem_matrices):
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8)
        with pytest.raises(ValueError):
            estimator.estimate(np.zeros(100, dtype=complex))

    def test_estimate_returns_raw_codes(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        result = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=8, num_paths=4
        ).estimate(received)
        assert isinstance(result, FixedPointEstimate)
        assert result.raw_real.dtype == np.int64
        assert result.raw_real.shape == (112,)
        # the floats are exactly the raw codes scaled back onto the grid
        resolution = result.accumulator_format.resolution
        rebuilt = (result.raw_real + 1j * result.raw_imag) * resolution
        assert np.allclose(
            rebuilt * result.coefficient_scale, result.coefficients, rtol=1e-12
        )


class TestEdgeCases:
    """Regression tests for corner cases surfaced by the equivalence harness."""

    def test_num_paths_equals_num_delays(self, aquamodem_matrices, rng):
        """Nf == Ns: the sweep must select every delay exactly once."""
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        estimator = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=8, num_paths=112
        )
        scalar = estimator.estimate(received)
        assert sorted(scalar.path_indices.tolist()) == list(range(112))
        assert np.isfinite(scalar.decision_history).all()
        batched = estimator.estimate_batch(received[np.newaxis, :])[0]
        assert np.array_equal(scalar.path_indices, batched.path_indices)
        assert np.array_equal(scalar.raw_real, batched.raw_real)

    def test_all_zero_received(self, aquamodem_matrices):
        """An all-zero receive vector (dynamic-range scale of 0) is legal.

        The dynamic-range scale falls back to 1.0 instead of evaluating
        ``log2(0)``, the datapath must not emit NaNs or warnings, and the
        estimate is exactly zero everywhere with a deterministic (first-N)
        delay selection.
        """
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8)
        zero = np.zeros(224, dtype=np.complex128)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scalar = estimator.estimate(zero)
            batched = estimator.estimate_batch(np.stack([zero, zero]))
        assert scalar.input_scale == 1.0
        assert not scalar.coefficients.any()
        assert not scalar.raw_real.any() and not scalar.raw_imag.any()
        assert not scalar.raw_decisions.any()
        assert scalar.path_indices.tolist() == [0, 1, 2, 3, 4, 5]
        for trial in range(2):
            assert np.array_equal(scalar.raw_real, batched[trial].raw_real)
            assert np.array_equal(scalar.path_indices, batched[trial].path_indices)

    def test_all_zero_row_inside_mixed_batch(self, aquamodem_matrices, rng):
        """A zero row must not perturb its batch neighbours (masked scales)."""
        received = rng.standard_normal((3, 224)) + 1j * rng.standard_normal((3, 224))
        received[1] = 0.0
        estimator = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8)
        batched = estimator.estimate_batch(received)
        assert batched.input_scale[1] == 1.0
        for trial in range(3):
            scalar = estimator.estimate(received[trial])
            assert np.array_equal(scalar.raw_real, batched[trial].raw_real)
            assert np.array_equal(scalar.raw_imag, batched[trial].raw_imag)

    @pytest.mark.parametrize("rounding", list(RoundingMode))
    @pytest.mark.parametrize("overflow", list(OverflowMode))
    def test_word_length_two(self, aquamodem_matrices, rng, rounding, overflow):
        """The narrowest legal datapath stays finite and in range in all modes."""
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        estimator = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=2, num_paths=6,
            rounding=rounding, overflow=overflow,
        )
        result = estimator.estimate(received)
        assert np.isfinite(result.coefficients).all()
        assert np.isfinite(result.decision_history).all()
        assert len(set(result.path_indices.tolist())) == 6
        assert (result.path_indices >= 0).all() and (result.path_indices < 112).all()
        fmt = result.accumulator_format
        for raw in (result.raw_real, result.raw_imag, result.raw_decisions):
            assert raw.min(initial=0) >= fmt.raw_min
            assert raw.max(initial=0) <= fmt.raw_max
        batched = estimator.estimate_batch(received[np.newaxis, :])[0]
        assert np.array_equal(result.raw_real, batched.raw_real)
        assert np.array_equal(result.raw_decisions, batched.raw_decisions)

    def test_word_length_two_ties_break_deterministically(self, aquamodem_matrices):
        """w=2 collapses many decision variables onto the same grid point.

        A ±1 waveform quantised into Fix2_1 saturates asymmetrically
        (+1 -> +0.5, -1 -> -1), so even a clean single-path problem ties
        across delays; what the datapath owes the harness is a
        *deterministic* first-maximum tie-break, identical in the scalar
        and batched paths — not path recovery, which genuinely degrades.
        """
        f_true = np.zeros(112, dtype=np.complex128)
        f_true[30] = 1.0
        received = aquamodem_matrices.synthesize(f_true)
        estimator = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=2, num_paths=3
        )
        first = estimator.estimate(received)
        again = estimator.estimate(received)
        assert np.array_equal(first.path_indices, again.path_indices)
        batched = estimator.estimate_batch(np.stack([received, received]))
        for trial in range(2):
            assert np.array_equal(first.path_indices, batched[trial].path_indices)
            assert np.array_equal(first.raw_decisions, batched[trial].raw_decisions)
        # at w=3 the same problem is already recovered exactly
        wider = FixedPointMatchingPursuit(
            aquamodem_matrices, word_length=3, num_paths=1
        ).estimate(received)
        assert wider.path_indices[0] == 30
