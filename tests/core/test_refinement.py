"""Unit tests for the least-squares refinement of MP estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.matching_pursuit import matching_pursuit
from repro.core.metrics import coefficient_mse, residual_energy_ratio
from repro.core.refinement import matching_pursuit_ls, refine_least_squares


class TestRefineLeastSquares:
    def test_support_preserved(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        greedy = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        refined = refine_least_squares(received, aquamodem_matrices.S, greedy)
        np.testing.assert_array_equal(refined.path_indices, greedy.path_indices)
        assert np.count_nonzero(refined.coefficients) <= 6

    def test_noiseless_refinement_is_exact_on_true_support(self, aquamodem_matrices):
        channel = random_sparse_channel(num_paths=3, max_delay=100, rng=1, min_separation=10)
        f_true = channel.coefficient_vector(112)
        received = aquamodem_matrices.synthesize(f_true)
        greedy = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        refined = refine_least_squares(received, aquamodem_matrices.S, greedy)
        # once the true support is included, the joint LS solve reproduces the
        # exact channel (remaining picks get ~zero coefficients)
        if set(channel.delays.tolist()).issubset(set(greedy.path_indices.tolist())):
            assert coefficient_mse(f_true, refined.coefficients) < 1e-12

    def test_refinement_never_increases_residual(self, aquamodem_matrices):
        for seed in range(5):
            channel = random_sparse_channel(num_paths=4, max_delay=100, rng=seed, min_separation=4)
            received = add_noise_for_snr(
                aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 15.0,
                rng=seed + 100,
            )
            greedy = matching_pursuit(received, aquamodem_matrices, num_paths=6)
            refined = refine_least_squares(received, aquamodem_matrices.S, greedy)
            res_greedy = residual_energy_ratio(received, aquamodem_matrices.S, greedy.coefficients)
            res_refined = residual_energy_ratio(received, aquamodem_matrices.S, refined.coefficients)
            assert res_refined <= res_greedy + 1e-12

    def test_refinement_improves_correlated_support_case(self, aquamodem_matrices):
        """Closely-spaced taps: greedy per-path coefficients are biased, LS is not."""
        f_true = np.zeros(112, dtype=complex)
        f_true[20] = 1.0
        f_true[22] = 0.8 * np.exp(1j * 0.4)
        received = aquamodem_matrices.synthesize(f_true)
        greedy = matching_pursuit(received, aquamodem_matrices, num_paths=2)
        refined = refine_least_squares(received, aquamodem_matrices.S, greedy)
        if set(greedy.path_indices.tolist()) == {20, 22}:
            assert coefficient_mse(f_true, refined.coefficients) < coefficient_mse(
                f_true, greedy.coefficients
            )

    def test_validation(self, aquamodem_matrices, rng):
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        greedy = matching_pursuit(received, aquamodem_matrices, num_paths=2)
        with pytest.raises(ValueError):
            refine_least_squares(received[:100], aquamodem_matrices.S, greedy)


class TestMatchingPursuitLs:
    def test_wrapper_signature_compatible_with_receiver(self, aquamodem_matrices):
        channel = random_sparse_channel(num_paths=3, max_delay=80, rng=3, min_separation=8)
        received = add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 20.0, rng=4
        )
        result = matching_pursuit_ls(received, aquamodem_matrices, num_paths=6)
        assert result.num_paths == 6
        assert residual_energy_ratio(received, aquamodem_matrices.S, result.coefficients) < 0.1

    def test_usable_as_receiver_backend(self, aquamodem_matrices):
        from repro.channel.simulator import apply_channel
        from repro.modem.receiver import Receiver
        from repro.modem.transmitter import Transmitter

        tx = Transmitter()
        rx = Receiver(estimator=lambda w, m, n: matching_pursuit_ls(w, m, num_paths=n))
        channel = random_sparse_channel(num_paths=3, max_delay=60, rng=5, min_separation=6)
        symbols = np.array([1, 6, 3, 0, 7])
        received = add_noise_for_snr(
            apply_channel(tx.transmit_symbols(symbols).samples, channel), 18.0, rng=6
        )
        output = rx.receive(received)
        np.testing.assert_array_equal(output.symbols, symbols)
