"""`lifetime_days is None` (censored deployments) must be handled explicitly.

Mirrors the PR 2 NaN-SER fix: a deployment that outlives the simulation
horizon has no death time, so its lifetime is ``None`` — downstream
aggregation must treat that as a censored observation, never as 0 days.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.ablations import (
    simulated_network_lifetime_study,
    summarize_lifetimes,
)
from repro.cli import main
from repro.network.simulator import NetworkSimulationResult


def result(first_death_time_s, generated=10, delivered=10) -> NetworkSimulationResult:
    return NetworkSimulationResult(
        first_death_time_s=first_death_time_s,
        simulated_time_s=86_400.0,
        packets_generated=generated,
        packets_delivered=delivered,
        node_reports={},
        node_alive={},
    )


class TestLifetimeDaysNone:
    def test_no_death_yields_none_not_zero(self):
        censored = result(None)
        assert censored.first_death_time_s is None
        assert censored.lifetime_days is None  # explicitly not 0.0

    def test_death_at_time_zero_is_zero_days_not_none(self):
        """A death at t=0 is a real (zero) lifetime; only no-death is None."""
        instant = result(0.0)
        assert instant.lifetime_days == 0.0
        assert instant.lifetime_days is not None


class TestSummarizeLifetimes:
    def test_all_censored_gives_none_mean(self):
        summary = summarize_lifetimes("X", [result(None), result(None)])
        assert summary.mean_lifetime_days is None
        assert summary.died_trials == 0
        assert summary.censored_trials == 2
        assert summary.mean_delivery_ratio == 1.0

    def test_censored_trials_excluded_from_mean(self):
        summary = summarize_lifetimes(
            "X", [result(86_400.0), result(None), result(3 * 86_400.0)]
        )
        # mean over the two deaths only: (1 + 3) / 2 days, not (1 + 0 + 3) / 3
        assert summary.mean_lifetime_days == pytest.approx(2.0)
        assert summary.died_trials == 2
        assert summary.censored_trials == 1

    def test_zero_day_death_still_counts_as_death(self):
        summary = summarize_lifetimes("X", [result(0.0), result(None)])
        assert summary.died_trials == 1
        assert summary.mean_lifetime_days == 0.0

    def test_empty_results(self):
        summary = summarize_lifetimes("X", [])
        assert summary.platform == "X"
        assert summary.trials == 0
        assert summary.died_trials == 0
        assert summary.mean_lifetime_days is None
        # no trials means no defined delivery ratio: NaN, not a fake 0.0
        assert math.isnan(summary.mean_delivery_ratio)

    def test_nan_ratios_excluded_from_mean(self):
        """Zero-packet trials report a NaN delivery ratio; the mean skips
        them instead of poisoning the aggregate (the PR's NaN bugfix)."""
        summary = summarize_lifetimes(
            "X",
            [
                result(None, generated=10, delivered=5),
                result(None, generated=0, delivered=0),  # NaN ratio
            ],
        )
        assert summary.mean_delivery_ratio == pytest.approx(0.5)

    def test_all_nan_ratios_mean_is_nan(self):
        summary = summarize_lifetimes("X", [result(None, generated=0, delivered=0)])
        assert math.isnan(summary.mean_delivery_ratio)


class TestSimulatedStudyCensoring:
    def test_huge_battery_reports_censored_not_zero(self):
        summaries = simulated_network_lifetime_study(
            grid_size=(2, 2),
            battery_capacity_j=1e9,
            report_interval_s=600.0,
            platform_energies_uj={"FPGA": 9.5},
            trials=2,
            max_days=0.2,
        )
        summary = summaries["FPGA"]
        assert summary.mean_lifetime_days is None
        assert summary.censored_trials == 2
        assert summary.mean_delivery_ratio == pytest.approx(1.0)

    def test_tiny_battery_reports_deaths(self):
        summaries = simulated_network_lifetime_study(
            grid_size=(3, 3),
            battery_capacity_j=100.0,
            report_interval_s=30.0,
            platform_energies_uj={"MicroBlaze": 2000.40},
            trials=2,
            max_days=2.0,
        )
        summary = summaries["MicroBlaze"]
        assert summary.died_trials == 2
        assert summary.mean_lifetime_days is not None
        assert summary.mean_lifetime_days > 0.0


class TestCliRendering:
    def test_censored_platform_rendered_as_beyond_horizon(self, capsys):
        assert main([
            "lifetime", "--trials", "1", "--grid", "2",
            "--battery-kj", "100000", "--report-interval-s", "600",
        ]) == 0
        out = capsys.readouterr().out
        assert "> horizon" in out
        assert "0/1" in out

    def test_contention_flags_drive_the_simulated_study(self, capsys):
        """--mac/--protocol/--drift-* plumb through to the network stack;
        under contention the delivery column drops below the perfect 1.000."""
        assert main([
            "lifetime", "--trials", "1", "--grid", "3",
            "--battery-kj", "0.15", "--report-interval-s", "30",
            "--mac", "csma", "--channel-load", "0.3", "--max-attempts", "3",
            "--protocol", "flooding", "--ttl", "3",
            "--drift-speed", "0.02", "--drift-epoch-s", "3600",
        ]) == 0
        out = capsys.readouterr().out
        assert "1/1" in out  # the tiny battery still dies
        rows = [
            line for line in out.splitlines()
            if "|" in line and "Platform" not in line
        ]
        ratios = [float(row.rsplit("|", 1)[1]) for row in rows]
        assert ratios and all(ratio < 1.0 for ratio in ratios)
