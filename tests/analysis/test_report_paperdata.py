"""Tests for the published-data module and the combined report."""

from __future__ import annotations

import pytest

from repro.analysis import paper_data
from repro.analysis.report import comparison_report


class TestPaperDataConsistency:
    def test_table2_row_count(self):
        # 3 bit widths x (3 Virtex-4 + 2 Spartan-3 rows) = 15 published rows
        assert len(paper_data.TABLE2_ROWS) == 15

    def test_table3_row_count(self):
        assert len(paper_data.TABLE3_ROWS) == 6

    def test_headline_ratio_derivable_from_table3(self):
        microblaze_energy = paper_data.TABLE3_ROWS["MicroBlaze 32bit"][2]
        dsp_energy = paper_data.TABLE3_ROWS["DSP 32bit"][2]
        best_energy = paper_data.TABLE3_ROWS["Virtex-4 112FC 8bit"][2]
        assert microblaze_energy / best_energy == pytest.approx(
            paper_data.HEADLINE_ENERGY_DECREASE["vs_microcontroller"], rel=0.001
        )
        assert dsp_energy / best_energy == pytest.approx(
            paper_data.HEADLINE_ENERGY_DECREASE["vs_dsp"], rel=0.001
        )

    def test_table2_energy_consistency_between_tables(self):
        """Table 3's timing for the FPGA rows matches the Table 2 timing column."""
        assert paper_data.TABLE3_ROWS["Virtex-4 112FC 8bit"][0] == paper_data.TABLE2_ROWS[(8, 112, "Virtex-4")][1]
        assert paper_data.TABLE3_ROWS["Spartan-3 14FC 8bit"][0] == paper_data.TABLE2_ROWS[(8, 14, "Spartan-3")][1]

    def test_table1_values(self):
        assert paper_data.TABLE1_PARAMETERS["total_receive_vector_samples"][0] == 224
        assert paper_data.REAL_TIME_DEADLINE_MS == pytest.approx(22.4)
        assert paper_data.AQUAMODEM_NUM_PATHS == 6


class TestComparisonReport:
    def test_report_mentions_every_artefact(self):
        text = comparison_report()
        assert "Table 1" in text
        assert "Figure 4" in text
        assert "Table 2" in text
        assert "Figure 6" in text
        assert "Table 3" in text
        assert "Headline" in text

    def test_report_quotes_paper_headline(self):
        text = comparison_report()
        assert "210" in text
        assert "52.7" in text
