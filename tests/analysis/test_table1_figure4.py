"""Tests for the Table 1 and Figure 4 reproductions (experiments E1-E2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.figure4 import reproduce_figure4
from repro.analysis.table1 import render_table1, reproduce_table1
from repro.modem.config import AquaModemConfig


class TestTable1Reproduction:
    def test_every_parameter_matches_exactly(self):
        rows = reproduce_table1()
        assert len(rows) == 9
        for row in rows:
            assert row.matches, f"{row.quantity}: paper {row.paper_value} vs {row.reproduced_value}"

    def test_render_contains_all_quantities(self):
        text = render_table1()
        assert "samples_per_symbol" in text
        assert "224" in text

    def test_modified_config_is_detected(self):
        rows = reproduce_table1(AquaModemConfig(chip_duration_s=0.3e-3))
        assert not all(row.matches for row in rows)


class TestFigure4Reproduction:
    @pytest.fixture(scope="class")
    def waveforms(self):
        return reproduce_figure4()

    def test_eight_waveforms_of_56_chips(self, waveforms):
        assert waveforms.num_waveforms == 8
        assert waveforms.chips_per_waveform == 56
        assert waveforms.samples_per_waveform == 112
        assert waveforms.chip_waveforms.shape == (8, 56)
        assert waveforms.sampled_waveforms.shape == (8, 112)

    def test_structural_properties(self, waveforms):
        assert waveforms.orthogonal
        assert waveforms.constant_envelope

    def test_sampled_waveform_is_chip_repetition(self, waveforms):
        np.testing.assert_array_equal(
            waveforms.sampled_waveforms[:, ::2], waveforms.chip_waveforms
        )
        np.testing.assert_array_equal(
            waveforms.sampled_waveforms[:, 1::2], waveforms.chip_waveforms
        )

    def test_alternative_config(self):
        result = reproduce_figure4(AquaModemConfig(walsh_symbols=4, spreading_chips=15))
        assert result.num_waveforms == 4
        assert result.chips_per_waveform == 60
        assert result.orthogonal
