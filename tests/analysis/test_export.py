"""Unit tests for the CSV/JSON experiment exporter."""

from __future__ import annotations

import csv
import json

import pytest

from repro.analysis.export import export_all, write_csv


class TestWriteCsv:
    def test_creates_directories_and_content(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "file.csv", ["a", "b"], [(1, 2), (3, 4)])
        assert path.exists()
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2"]
        assert len(rows) == 3


class TestExportAll:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        output_dir = tmp_path_factory.mktemp("export")
        return output_dir, export_all(output_dir)

    def test_all_artefacts_written(self, exported):
        output_dir, written = exported
        assert set(written) == {"table1", "table2", "figure6", "table3", "summary"}
        for path in written.values():
            assert path.exists()
            assert path.stat().st_size > 0

    def test_table2_row_count(self, exported):
        _, written = exported
        with written["table2"].open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 18
        slices = {row["slices"] for row in rows}
        assert "11508" in slices

    def test_summary_headline(self, exported):
        _, written = exported
        summary = json.loads(written["summary"].read_text())
        assert summary["table1_matches"] is True
        assert summary["headline_energy_decrease_vs_microcontroller"] == pytest.approx(213.0, rel=0.05)
        assert summary["paper_headline_vs_dsp"] == pytest.approx(52.71)
        assert summary["table2_infeasible_points"] == 3

    def test_figure6_csv_has_paper_anchors(self, exported):
        _, written = exported
        with written["figure6"].open() as handle:
            rows = list(csv.DictReader(handle))
        anchored = [r for r in rows if r["paper_power_w"] not in ("", "None")]
        assert len(anchored) == 4
