"""Tests for the ablation / extension studies (experiments E6-E9)."""

from __future__ import annotations

import pytest

from repro.analysis.ablations import (
    aquamodem_signal_matrices,
    bitwidth_accuracy_ablation,
    dsss_vs_fsk_ablation,
    network_lifetime_study,
    parallelism_ablation,
)
from repro.hardware.devices import SPARTAN3_XC3S5000


class TestAquamodemSignalMatrices:
    def test_geometry(self):
        matrices = aquamodem_signal_matrices()
        assert matrices.S.shape == (224, 112)


class TestBitwidthAccuracy:
    @pytest.fixture(scope="class")
    def results(self):
        return bitwidth_accuracy_ablation(
            word_lengths=(4, 8, 12), num_trials=8, snr_db=25.0, rng=0
        )

    def test_result_per_word_length(self, results):
        assert [r.word_length for r in results] == [4, 8, 12]

    def test_eight_bits_close_to_float(self, results):
        """The paper's claim (via Meng et al.): 8-10 bits suffice."""
        by_bits = {r.word_length: r for r in results}
        assert by_bits[8].mean_error_vs_float < 0.25
        assert by_bits[8].mean_support_recovery > 0.9
        assert by_bits[8].mean_normalized_error < 0.2

    def test_four_bits_clearly_worse(self, results):
        by_bits = {r.word_length: r for r in results}
        assert by_bits[4].mean_normalized_error > 1.5 * by_bits[8].mean_normalized_error

    def test_wider_words_do_not_hurt_float_agreement(self, results):
        by_bits = {r.word_length: r for r in results}
        assert by_bits[12].mean_error_vs_float <= by_bits[4].mean_error_vs_float

    def test_batched_engine_identical_to_sweep(self, results):
        """batch=True (the default) and the scalar sweep agree exactly."""
        scalar = bitwidth_accuracy_ablation(
            word_lengths=(4, 8, 12), num_trials=8, snr_db=25.0, rng=0, batch=False
        )
        assert scalar == results

    def test_batched_engine_warns_when_jobs_or_cache_ignored(self):
        with pytest.warns(UserWarning, match="jobs.*ignored"):
            bitwidth_accuracy_ablation(
                word_lengths=(8,), num_trials=2, rng=0, batch=True, jobs=4
            )


class TestParallelismAblation:
    def test_all_divisors_evaluated(self):
        results = parallelism_ablation()
        assert [e.point.num_fc_blocks for e in results] == [1, 2, 4, 7, 8, 14, 16, 28, 56, 112]

    def test_energy_monotone_decreasing_in_parallelism(self):
        results = parallelism_ablation()
        feasible = [e for e in results if e.feasible]
        energies = [e.energy_uj for e in feasible]
        assert energies == sorted(energies, reverse=True)

    def test_spartan3_feasibility_cutoff(self):
        results = parallelism_ablation(device=SPARTAN3_XC3S5000)
        feasibility = {e.point.num_fc_blocks: e.feasible for e in results}
        assert feasibility[28] and not feasibility[56] and not feasibility[112]


class TestDsssVsFsk:
    def test_dsss_never_worse_than_fsk(self):
        curves = dsss_vs_fsk_ablation(
            snr_points_db=(-6.0, 0.0), num_symbols=48, rng=0
        )
        assert set(curves) == {"DSSS", "FSK"}
        for dsss_point, fsk_point in zip(curves["DSSS"], curves["FSK"]):
            assert dsss_point.snr_db == fsk_point.snr_db
            assert dsss_point.symbol_error_rate <= fsk_point.symbol_error_rate


class TestNetworkLifetimeStudy:
    @pytest.fixture(scope="class")
    def lifetimes(self):
        return network_lifetime_study(grid_size=(3, 3), report_interval_s=120.0)

    def test_all_platforms_reported(self, lifetimes):
        assert set(lifetimes) == {
            "MicroBlaze", "TI C6713 DSP", "Virtex-4 1FC 16bit",
            "Spartan-3 14FC 8bit", "Virtex-4 112FC 8bit",
        }
        assert all(days > 0 for days in lifetimes.values())

    def test_lifetime_ordering_follows_processing_energy(self, lifetimes):
        assert (
            lifetimes["Virtex-4 112FC 8bit"]
            >= lifetimes["Spartan-3 14FC 8bit"]
            >= lifetimes["Virtex-4 1FC 16bit"]
            >= lifetimes["TI C6713 DSP"]
            >= lifetimes["MicroBlaze"]
        )

    def test_fpga_gains_meaningful_lifetime_over_microblaze(self, lifetimes):
        assert lifetimes["Virtex-4 112FC 8bit"] > 1.2 * lifetimes["MicroBlaze"]

    def test_duty_cycled_mode_shrinks_the_gap(self):
        continuous = network_lifetime_study(grid_size=(3, 3))
        duty_cycled = network_lifetime_study(grid_size=(3, 3), continuous_detection=False)
        gap_continuous = (
            continuous["Virtex-4 112FC 8bit"] / continuous["MicroBlaze"]
        )
        gap_duty = duty_cycled["Virtex-4 112FC 8bit"] / duty_cycled["MicroBlaze"]
        assert gap_continuous > gap_duty
