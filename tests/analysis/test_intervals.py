"""Confidence intervals and streaming accumulators (`repro.analysis.intervals`).

The Clopper-Pearson bounds are checked against their closed forms at the
k=0 / k=n edges (``1 - (α/2)^(1/n)`` and its mirror) and against published
reference values in the interior, so the pure-stdlib incomplete-beta
implementation is pinned without a scipy dependency.
"""

from __future__ import annotations

import math
import statistics

import pytest

from repro.analysis.intervals import (
    BINOMIAL_METHODS,
    BinomialAccumulator,
    ConfidenceInterval,
    OnlineMean,
    binomial_interval,
    clopper_pearson_interval,
    group_stats,
    normal_interval,
    wilson_interval,
)


class TestWilson:
    def test_known_value(self):
        # canonical worked example: 5/10 at 95% -> (0.2366, 0.7634)
        interval = wilson_interval(5, 10, 0.95)
        assert interval.estimate == 0.5
        assert interval.low == pytest.approx(0.2366, abs=1e-4)
        assert interval.high == pytest.approx(0.7634, abs=1e-4)

    def test_never_collapses_at_zero_successes(self):
        interval = wilson_interval(0, 50)
        assert interval.low == 0.0
        assert interval.high > 0.0  # unlike the Wald interval

    def test_bounds_stay_in_unit_interval(self):
        for successes, trials in ((0, 3), (3, 3), (1, 1000), (999, 1000)):
            interval = wilson_interval(successes, trials)
            assert 0.0 <= interval.low <= interval.high <= 1.0

    def test_fractional_counts_accepted(self):
        interval = wilson_interval(2.5, 10.0)
        assert interval.estimate == pytest.approx(0.25)

    def test_width_shrinks_with_trials(self):
        wide = wilson_interval(5, 10)
        narrow = wilson_interval(500, 1000)
        assert narrow.half_width < wide.half_width

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.5)


class TestClopperPearson:
    def test_zero_successes_closed_form(self):
        # k=0: low = 0, high = 1 - (alpha/2)^(1/n)
        n, alpha = 20, 0.05
        interval = clopper_pearson_interval(0, n)
        assert interval.low == 0.0
        assert interval.high == pytest.approx(1 - (alpha / 2) ** (1 / n), abs=1e-9)

    def test_all_successes_closed_form(self):
        n, alpha = 20, 0.05
        interval = clopper_pearson_interval(n, n)
        assert interval.high == 1.0
        assert interval.low == pytest.approx((alpha / 2) ** (1 / n), abs=1e-9)

    def test_known_interior_value(self):
        # published reference: 5/10 at 95% -> (0.1871, 0.8129)
        interval = clopper_pearson_interval(5, 10)
        assert interval.low == pytest.approx(0.1871, abs=1e-4)
        assert interval.high == pytest.approx(0.8129, abs=1e-4)

    def test_wider_than_wilson(self):
        # exact/conservative: CP always covers at least what Wilson does here
        for successes, trials in ((5, 10), (1, 30), (80, 100)):
            cp = clopper_pearson_interval(successes, trials)
            wilson = wilson_interval(successes, trials)
            assert cp.half_width >= wilson.half_width

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            clopper_pearson_interval(1, 0)
        with pytest.raises(ValueError):
            clopper_pearson_interval(11, 10)


class TestBinomialDispatch:
    def test_methods_tuple(self):
        assert BINOMIAL_METHODS == ("wilson", "clopper-pearson")

    def test_dispatch(self):
        assert binomial_interval(5, 10, method="wilson") == wilson_interval(5, 10)
        assert binomial_interval(5, 10, method="clopper-pearson") == (
            clopper_pearson_interval(5, 10)
        )

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown binomial interval method"):
            binomial_interval(5, 10, method="wald")


class TestNormalInterval:
    def test_margin_matches_z_formula(self):
        interval = normal_interval(10.0, 2.0, 100, confidence=0.95)
        assert interval.estimate == 10.0
        assert interval.half_width == pytest.approx(1.959964 * 2.0 / 10.0, abs=1e-5)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            normal_interval(0.0, 1.0, 0)


class TestConfidenceInterval:
    def test_half_width_and_to_dict(self):
        interval = ConfidenceInterval(estimate=0.5, low=0.4, high=0.8, confidence=0.9)
        assert interval.half_width == pytest.approx(0.2)
        payload = interval.to_dict()
        assert payload == {
            "estimate": 0.5, "low": 0.4, "high": 0.8,
            "half_width": pytest.approx(0.2), "confidence": 0.9,
        }


class TestOnlineMean:
    def test_matches_batch_statistics(self):
        values = [1.5, -2.0, 3.25, 0.0, 10.0, -7.5]
        acc = OnlineMean()
        for value in values:
            acc.add(value)
        assert acc.count == len(values)
        assert acc.mean == pytest.approx(statistics.fmean(values))
        assert acc.variance == pytest.approx(statistics.variance(values))
        assert acc.std == pytest.approx(statistics.stdev(values))

    def test_interval_none_below_two(self):
        acc = OnlineMean()
        assert acc.interval() is None
        acc.add(1.0)
        assert acc.interval() is None
        acc.add(2.0)
        interval = acc.interval()
        assert interval is not None
        assert interval.estimate == pytest.approx(1.5)

    def test_interval_matches_normal_interval(self):
        acc = OnlineMean()
        for value in (1.0, 2.0, 3.0, 4.0):
            acc.add(value)
        assert acc.interval(0.9) == normal_interval(acc.mean, acc.std, 4, 0.9)

    def test_numerically_stable_at_large_offsets(self):
        # the naive sum-of-squares formula loses all precision here
        acc = OnlineMean()
        for value in (1e9 + 1.0, 1e9 + 2.0, 1e9 + 3.0):
            acc.add(value)
        assert acc.variance == pytest.approx(1.0)


class TestBinomialAccumulator:
    def test_counts_and_interval(self):
        acc = BinomialAccumulator()
        acc.add(3, 10)
        acc.add(1, 10)
        assert acc.proportion == pytest.approx(0.2)
        assert acc.interval() == binomial_interval(4, 20)
        assert acc.interval(method="clopper-pearson") == (
            binomial_interval(4, 20, method="clopper-pearson")
        )

    def test_per_trial_rates(self):
        acc = BinomialAccumulator()
        acc.add(0.25)  # one trial contributing a rate
        acc.add(0.75)
        assert acc.trials == 2.0
        assert acc.proportion == pytest.approx(0.5)

    def test_empty_has_no_interval(self):
        acc = BinomialAccumulator()
        assert acc.proportion == 0.0
        assert acc.interval() is None

    def test_rejects_bad_observations(self):
        acc = BinomialAccumulator()
        with pytest.raises(ValueError):
            acc.add(1.0, 0.0)
        with pytest.raises(ValueError):
            acc.add(2.0, 1.0)


class TestGroupStats:
    def test_streams_grouped_means_and_intervals(self):
        records = [
            {"snr_db": 0.0, "ser": 0.5},
            {"snr_db": 0.0, "ser": 0.3},
            {"snr_db": 6.0, "ser": 0.1},
            {"snr_db": 6.0, "ser": 0.2},
        ]
        stats = group_stats(iter(records), by="snr_db", metric="ser")
        assert set(stats) == {0.0, 6.0}
        assert stats[0.0].count == 2
        assert stats[0.0].mean == pytest.approx(0.4)
        assert stats[0.0].interval is not None
        assert stats[0.0].to_dict()["group"] == 0.0

    def test_skips_heterogeneous_records(self):
        records = [
            {"snr_db": 0.0, "ser": 0.5},
            {"snr_db": 0.0},                      # no metric
            {"ser": 0.9},                         # no group key
            {"snr_db": 0.0, "ser": "corrupt"},    # non-numeric
            {"snr_db": 0.0, "ser": True},         # bool is not a measurement
        ]
        stats = group_stats(records, by="snr_db", metric="ser")
        assert stats[0.0].count == 1
        assert stats[0.0].mean == 0.5

    def test_memory_is_o_groups_over_a_generator(self):
        def stream():
            for i in range(10_000):
                yield {"g": i % 4, "m": float(i % 7)}

        stats = group_stats(stream(), by="g", metric="m")
        assert sum(s.count for s in stats.values()) == 10_000


class TestBetaFunctionInternals:
    """The pure-stdlib incomplete beta agrees with independent identities."""

    def test_symmetry_identity(self):
        from repro.analysis.intervals import _regularised_incomplete_beta

        for a, b, x in ((2.0, 5.0, 0.3), (10.0, 2.0, 0.8), (0.5, 0.5, 0.5)):
            left = _regularised_incomplete_beta(a, b, x)
            right = 1.0 - _regularised_incomplete_beta(b, a, 1.0 - x)
            assert left == pytest.approx(right, abs=1e-10)

    def test_binomial_cdf_identity(self):
        # I_p(k, n-k+1) = P(X >= k) for X ~ Binomial(n, p)
        from repro.analysis.intervals import _regularised_incomplete_beta

        n, k, p = 10, 3, 0.4
        tail = sum(
            math.comb(n, i) * p**i * (1 - p) ** (n - i) for i in range(k, n + 1)
        )
        assert _regularised_incomplete_beta(k, n - k + 1, p) == pytest.approx(
            tail, abs=1e-10
        )

    def test_ppf_inverts_cdf(self):
        from repro.analysis.intervals import (
            _beta_ppf,
            _regularised_incomplete_beta,
        )

        for quantile in (0.025, 0.5, 0.975):
            x = _beta_ppf(quantile, 3.0, 8.0)
            assert _regularised_incomplete_beta(3.0, 8.0, x) == pytest.approx(
                quantile, abs=1e-9
            )
