"""Tests for the Table 2 and Figure 6 reproductions (experiments E3-E4)."""

from __future__ import annotations

import pytest

from repro.analysis import paper_data
from repro.analysis.figure6 import render_figure6, reproduce_figure6
from repro.analysis.table2 import render_table2, reproduce_table2


class TestTable2Reproduction:
    @pytest.fixture(scope="class")
    def rows(self):
        return reproduce_table2()

    def test_eighteen_rows_with_three_infeasible(self, rows):
        assert len(rows) == 18
        infeasible = [r for r in rows if not r.feasible]
        assert len(infeasible) == 3
        assert all(r.device_family == "Spartan-3" and r.num_fc_blocks == 112 for r in infeasible)

    def test_every_published_row_present(self, rows):
        published = {
            (r.word_length, r.num_fc_blocks, r.device_family)
            for r in rows
            if r.paper_slices is not None
        }
        assert published == set(paper_data.TABLE2_ROWS)

    def test_area_reproduced_exactly(self, rows):
        for row in rows:
            if row.paper_slices is not None:
                assert row.slices == row.paper_slices
                assert row.slice_error == 0.0

    def test_timing_within_half_percent(self, rows):
        for row in rows:
            if row.paper_time_us is not None:
                assert row.time_error < 0.005

    def test_infeasible_rows_have_no_error_numbers(self, rows):
        for row in rows:
            if not row.feasible:
                assert row.slice_error is None and row.time_error is None

    def test_render(self, rows):
        text = render_table2(rows)
        assert "11508" in text
        assert "Spartan-3" in text


class TestFigure6Reproduction:
    @pytest.fixture(scope="class")
    def points(self):
        return reproduce_figure6()

    def test_point_count(self, points):
        assert len(points) == 18

    def test_quiescent_power_annotation(self, points):
        for point in points:
            assert point.quiescent_power_w == paper_data.FIGURE6_QUIESCENT_POWER_W[point.device_family]
            if point.feasible:
                assert point.power_w > point.quiescent_power_w

    def test_published_anchors_within_four_percent(self, points):
        anchored = [p for p in points if p.paper_power_w is not None]
        assert len(anchored) == 4
        for p in anchored:
            assert p.power_w == pytest.approx(p.paper_power_w, rel=0.04)
            assert p.energy_uj == pytest.approx(p.paper_energy_uj, rel=0.04)

    def test_shape_power_rises_energy_falls_with_parallelism(self, points):
        for family in ("Virtex-4", "Spartan-3"):
            for bits in (8, 12, 16):
                series = {
                    p.num_fc_blocks: p
                    for p in points
                    if p.device_family == family and p.word_length == bits and p.feasible
                }
                levels = sorted(series)
                powers = [series[p].power_w for p in levels]
                energies = [series[p].energy_uj for p in levels]
                assert powers == sorted(powers)
                assert energies == sorted(energies, reverse=True)

    def test_serial_designs_sit_near_quiescent_floor(self, points):
        """Figure 6 observation: the 1-FC designs draw little more than quiescent power."""
        for p in points:
            if p.num_fc_blocks == 1:
                assert p.power_w - p.quiescent_power_w < 0.05

    def test_render(self, points):
        text = render_figure6(points)
        assert "Energy (uJ)" in text
