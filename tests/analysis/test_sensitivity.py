"""Unit tests for the calibration-sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    PERTURBABLE_PARAMETERS,
    headline_sensitivity,
)


class TestHeadlineSensitivity:
    def test_zero_perturbation_reproduces_headline(self):
        point = headline_sensitivity("fpga_quiescent_power", 0.0)
        assert point.energy_decrease_vs_microcontroller == pytest.approx(213.0, rel=0.02)
        assert point.energy_decrease_vs_dsp == pytest.approx(53.3, rel=0.02)

    @pytest.mark.parametrize("parameter", PERTURBABLE_PARAMETERS)
    @pytest.mark.parametrize("change", [-0.2, 0.2])
    def test_conclusion_survives_20_percent_perturbations(self, parameter, change):
        """The qualitative claim (orders of magnitude) is robust to calibration error."""
        point = headline_sensitivity(parameter, change)
        assert point.energy_decrease_vs_microcontroller > 100.0
        assert point.energy_decrease_vs_dsp > 25.0

    def test_directionality_fpga_quiescent(self):
        up = headline_sensitivity("fpga_quiescent_power", 0.2)
        down = headline_sensitivity("fpga_quiescent_power", -0.2)
        assert up.fpga_energy_uj > down.fpga_energy_uj
        assert up.energy_decrease_vs_dsp < down.energy_decrease_vs_dsp

    def test_directionality_microblaze_power_only_affects_its_ratio(self):
        up = headline_sensitivity("microblaze_active_power", 0.2)
        base = headline_sensitivity("microblaze_active_power", 0.0)
        assert up.energy_decrease_vs_microcontroller == pytest.approx(
            1.2 * base.energy_decrease_vs_microcontroller, rel=1e-6
        )
        assert up.energy_decrease_vs_dsp == pytest.approx(base.energy_decrease_vs_dsp, rel=1e-9)

    def test_fpga_clock_perturbation_moves_time_and_power_together(self):
        # a faster clock raises power but shortens time; energy (and hence the
        # ratios) moves only through the quiescent share, so the effect is small
        up = headline_sensitivity("fpga_clock_frequency", 0.2)
        base = headline_sensitivity("fpga_clock_frequency", 0.0)
        assert abs(up.energy_decrease_vs_dsp - base.energy_decrease_vs_dsp) / base.energy_decrease_vs_dsp < 0.1

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            headline_sensitivity("gpu_power", 0.1)

    def test_out_of_range_change_rejected(self):
        with pytest.raises(ValueError):
            headline_sensitivity("fpga_quiescent_power", -0.95)
