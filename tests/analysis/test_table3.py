"""Tests for the Table 3 reproduction (experiment E5, the headline result)."""

from __future__ import annotations

import pytest

from repro.analysis.table3 import render_table3, reproduce_table3


class TestTable3Reproduction:
    @pytest.fixture(scope="class")
    def rows(self):
        return reproduce_table3()

    def test_six_rows_all_matched_to_paper(self, rows):
        assert len(rows) == 6
        assert all(row.paper_energy_uj is not None for row in rows)

    def test_energy_within_four_percent_of_paper(self, rows):
        for row in rows:
            assert row.energy_error is not None and row.energy_error < 0.04, row.label

    def test_energy_decrease_ratios_match_paper(self, rows):
        for row in rows:
            assert row.energy_decrease_vs_microcontroller == pytest.approx(
                row.paper_decrease_vs_microcontroller, rel=0.06
            )
            assert row.energy_decrease_vs_dsp == pytest.approx(
                row.paper_decrease_vs_dsp, rel=0.06
            )

    def test_headline_result(self, rows):
        headline = next(r for r in rows if "112FC" in r.label)
        assert headline.energy_decrease_vs_microcontroller == pytest.approx(210.57, rel=0.05)
        assert headline.energy_decrease_vs_dsp == pytest.approx(52.71, rel=0.05)

    def test_ordering_matches_paper_conclusion(self, rows):
        """Every FPGA point beats both processors; parallel beats serial."""
        by_label = {r.label: r for r in rows}
        fpga_labels = [l for l in by_label if "FC" in l]
        for label in fpga_labels:
            assert by_label[label].energy_decrease_vs_dsp > 1.0
            assert by_label[label].energy_decrease_vs_microcontroller > 1.0
        assert (
            by_label["Virtex-4 112FC 8bit"].energy_uj
            < by_label["Spartan-3 14FC 8bit"].energy_uj
            < by_label["Spartan-3 1FC 16bit"].energy_uj
            < by_label["Virtex-4 1FC 16bit"].energy_uj
        )

    def test_render(self, rows):
        text = render_table3(rows)
        assert "MicroBlaze" in text
        assert "210" in text or "213" in text
