"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.command == "table1"
        for command in ("table2", "figure6", "table3", "report", "bitwidth", "lifetime", "estimate"):
            assert parser.parse_args([command]).command == command

    def test_global_num_paths_option(self):
        args = build_parser().parse_args(["--num-paths", "4", "table3"])
        assert args.num_paths == 4

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "AquaModem design parameters" in out
        assert "224" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "11508" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "MicroBlaze" in out and "X" in out

    def test_figure6(self, capsys):
        assert main(["figure6"]) == 0
        assert "Energy (uJ)" in capsys.readouterr().out

    def test_estimate(self, capsys):
        assert main(["estimate", "--seed", "1", "--snr-db", "25"]) == 0
        out = capsys.readouterr().out
        assert "True channel taps" in out and "Estimated taps" in out

    def test_bitwidth(self, capsys):
        assert main(["bitwidth", "--trials", "2"]) == 0
        out = capsys.readouterr().out.lower()
        assert "word length" in out and "batched engine" in out

    def test_bitwidth_no_batch_prints_identical_table(self, capsys):
        assert main(["bitwidth", "--trials", "2"]) == 0
        batched = capsys.readouterr().out
        assert main(["bitwidth", "--trials", "2", "--no-batch"]) == 0
        scalar = capsys.readouterr().out
        assert "scalar datapath" in scalar
        # identical numbers, engine label aside
        assert (
            batched.replace("batched engine", "X") == scalar.replace("scalar datapath", "X")
        )

    def test_lifetime(self, capsys):
        assert main(["lifetime", "--grid", "3", "--battery-kj", "50"]) == 0
        out = capsys.readouterr().out
        assert "MicroBlaze" in out and "lifetime" in out.lower()

    def test_export(self, capsys, tmp_path):
        assert main(["export", "--output-dir", str(tmp_path / "results")]) == 0
        out = capsys.readouterr().out
        assert "summary" in out
        assert (tmp_path / "results" / "summary.json").exists()
        assert (tmp_path / "results" / "table2_area_timing.csv").exists()

    def test_custom_num_paths_changes_table3(self, capsys):
        main(["--num-paths", "3", "table3"])
        out_3 = capsys.readouterr().out
        main(["--num-paths", "6", "table3"])
        out_6 = capsys.readouterr().out
        assert out_3 != out_6
