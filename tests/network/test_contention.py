"""Unit tests for the contention layer: CSMA MAC, counter-based uniforms,
TTL flooding, drift mobility and the density/PDR coupling.

The end-to-end batch-vs-event-loop equivalence of these features lives in
``test_batch_equivalence.py``; this module pins the building blocks in
isolation against hand-computed examples.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.mac import CsmaMac
from repro.network.routing import TtlFlooding, flood_packet
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Deployment, LinearMobility, grid_deployment
from repro.network.traffic import PeriodicTraffic
from repro.utils.rng import counter_uniforms


class TestCsmaMac:
    def test_no_contenders_always_clear(self):
        mac = CsmaMac(channel_load=0.4)
        assert mac.attempt_success_probability(0) == 1.0
        assert mac.delivery_probability(0) == 1.0

    def test_success_falls_with_contenders(self):
        mac = CsmaMac(channel_load=0.2)
        probs = [mac.attempt_success_probability(c) for c in range(6)]
        assert all(a > b for a, b in zip(probs, probs[1:]))
        # hand check: clear = (1 - 0.2)^2 with no capture
        assert probs[2] == pytest.approx(0.64)

    def test_capture_recovers_collisions(self):
        plain = CsmaMac(channel_load=0.3, capture_probability=0.0)
        capture = CsmaMac(channel_load=0.3, capture_probability=0.5)
        assert capture.attempt_success_probability(3) > plain.attempt_success_probability(3)
        # full capture means every attempt decodes regardless of contention
        always = CsmaMac(channel_load=0.9, capture_probability=1.0)
        assert always.attempt_success_probability(10) == 1.0

    def test_delivery_probability_truncated_geometric(self):
        mac = CsmaMac(channel_load=0.5, max_attempts=3)
        p = mac.attempt_success_probability(2)  # 0.25
        assert mac.delivery_probability(2) == pytest.approx(1.0 - (1.0 - p) ** 3)

    def test_expected_transmissions_closed_form(self):
        mac = CsmaMac(channel_load=0.5, max_attempts=4)
        p = mac.attempt_success_probability(2)
        closed_form = (1.0 - (1.0 - p) ** 4) / p
        assert mac.expected_transmissions_per_packet(2) == pytest.approx(
            closed_form, rel=1e-12
        )
        assert mac.expected_transmissions_per_packet(0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CsmaMac(channel_load=1.5)
        with pytest.raises(ValueError):
            CsmaMac(max_attempts=0)
        with pytest.raises(ValueError):
            CsmaMac(capture_probability=-0.1)
        with pytest.raises(ValueError):
            CsmaMac().attempt_success_probability(-1)


class TestCounterUniforms:
    def test_deterministic_and_in_range(self):
        a = counter_uniforms(42, np.arange(100), 8)
        b = counter_uniforms(42, np.arange(100), 8)
        assert (a == b).all()
        assert a.shape == (100, 8)
        assert (a >= 0.0).all() and (a < 1.0).all()

    def test_scalar_matches_vector_row(self):
        """The property both engines rely on: a scalar (event-loop) call sees
        exactly the row the vectorised (batch) call sees for that event."""
        matrix = counter_uniforms(7, np.array([3, 11, 900_000]), 6)
        for row, event in enumerate((3, 11, 900_000)):
            scalar = counter_uniforms(7, event, 6)
            assert scalar.shape == (6,)
            assert (scalar == matrix[row]).all()

    def test_prefix_consistency(self):
        """Reading fewer slots yields a prefix of the longer read — the
        event loop can stop early (hop succeeded) without desyncing."""
        long = counter_uniforms(5, 17, 10)
        short = counter_uniforms(5, 17, 4)
        assert (short == long[:4]).all()

    def test_seed_and_event_sensitivity(self):
        assert not (counter_uniforms(1, 0, 8) == counter_uniforms(2, 0, 8)).all()
        assert not (counter_uniforms(1, 0, 8) == counter_uniforms(1, 1, 8)).all()

    def test_roughly_uniform(self):
        values = counter_uniforms(0, np.arange(2_000), 4).ravel()
        assert values.mean() == pytest.approx(0.5, abs=0.01)
        assert values.std() == pytest.approx(1.0 / math.sqrt(12.0), abs=0.01)

    def test_degenerate_slots(self):
        assert counter_uniforms(0, 0, 0).shape == (0,)
        with pytest.raises(ValueError):
            counter_uniforms(0, 0, -1)


CHAIN = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}


class TestFloodPacket:
    def test_chain_flood_hand_example(self):
        broadcasts, delivered = flood_packet(
            CHAIN, lambda n: True, source=3, sink=0, ttl=3,
            edge_success=lambda u, v: True,
        )
        assert delivered
        # level-synchronous: 3 floods, then 2 (3 already heard), then 1; the
        # sink never rebroadcasts, and every alive neighbour pays reception
        assert broadcasts == [(3, [2]), (2, [1, 3]), (1, [0, 2])]

    def test_ttl_expires_before_sink(self):
        broadcasts, delivered = flood_packet(
            CHAIN, lambda n: True, source=3, sink=0, ttl=2,
            edge_success=lambda u, v: True,
        )
        assert not delivered
        assert broadcasts == [(3, [2]), (2, [1, 3])]

    def test_failed_decodes_still_charge_receivers(self):
        """Undecoded copies do not propagate, but the broadcast still lists
        (and the simulator still charges) every alive neighbour."""
        broadcasts, delivered = flood_packet(
            CHAIN, lambda n: True, source=3, sink=0, ttl=3,
            edge_success=lambda u, v: False,
        )
        assert not delivered
        assert broadcasts == [(3, [2])]

    def test_dead_relay_partitions_flood(self):
        broadcasts, delivered = flood_packet(
            CHAIN, lambda n: n != 2, source=3, sink=0, ttl=5,
            edge_success=lambda u, v: True,
        )
        assert not delivered
        assert broadcasts == [(3, [])]

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            TtlFlooding(ttl=0)
        assert TtlFlooding(ttl=2).name == "flooding"

    def test_source_is_sink_no_broadcasts(self):
        broadcasts, delivered = flood_packet(
            CHAIN, lambda n: True, source=0, sink=0, ttl=3,
            edge_success=lambda u, v: True,
        )
        assert delivered
        assert broadcasts == []


class TestLinearMobility:
    DEPLOYMENT = Deployment(
        positions={0: (100.0, 100.0), 1: (0.0, 0.0), 2: (200.0, 0.0)}, sink_id=0
    )

    def test_epoch_zero_is_identity(self):
        mobility = LinearMobility(speed_mps=0.1, epoch_s=3_600.0)
        assert mobility.positions_at(self.DEPLOYMENT, 0) is self.DEPLOYMENT

    def test_sink_is_moored(self):
        mobility = LinearMobility(speed_mps=0.5, epoch_s=3_600.0)
        drifted = mobility.positions_at(self.DEPLOYMENT, 4)
        assert drifted.positions[0] == (100.0, 100.0)
        assert drifted.sink_id == 0

    def test_drift_distance_is_speed_times_elapsed(self):
        mobility = LinearMobility(speed_mps=0.25, epoch_s=1_000.0)
        drifted = mobility.positions_at(self.DEPLOYMENT, 3)
        for node_id in (1, 2):
            x0, y0 = self.DEPLOYMENT.positions[node_id]
            x1, y1 = drifted.positions[node_id]
            assert math.hypot(x1 - x0, y1 - y0) == pytest.approx(0.25 * 3 * 1_000.0)

    def test_headings_deterministic_and_distinct(self):
        mobility = LinearMobility(speed_mps=0.1, heading_seed=9)
        assert mobility.heading_rad(1) == mobility.heading_rad(1)
        assert mobility.heading_rad(1) != mobility.heading_rad(2)
        assert 0.0 <= mobility.heading_rad(1) < 2.0 * math.pi
        other_seed = LinearMobility(speed_mps=0.1, heading_seed=10)
        assert other_seed.heading_rad(1) != mobility.heading_rad(1)

    def test_epoch_index(self):
        mobility = LinearMobility(speed_mps=0.1, epoch_s=100.0)
        assert mobility.epoch_index(0.0) == 0
        assert mobility.epoch_index(99.999) == 0
        assert mobility.epoch_index(100.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearMobility(speed_mps=0.0)
        with pytest.raises(ValueError):
            LinearMobility(speed_mps=0.1, epoch_s=0.0)
        with pytest.raises(ValueError):
            LinearMobility(speed_mps=0.1).positions_at(self.DEPLOYMENT, -1)


def density_simulator(side: int, seed: int = 0) -> NetworkSimulator:
    """A fixed-area deployment at side*side nodes under the contention MAC."""
    area = 600.0
    return NetworkSimulator(
        deployment=grid_deployment(side, side, spacing_m=area / (side - 1)),
        energy_budget=ModemEnergyBudget(processing_energy_per_estimation_j=500.76e-6),
        traffic=PeriodicTraffic(report_interval_s=60.0, packet_symbols=16),
        communication_range_m=320.0,
        battery_capacity_j=50_000.0,
        mac=CsmaMac(channel_load=0.1, max_attempts=5),
        rng=seed,
        batch=True,
    )


def run_density(side: int, seed: int = 0):
    return density_simulator(side, seed).run(
        max_time_s=0.05 * 86_400.0, stop_at_first_death=False
    )


class TestDensityPdrCoupling:
    def test_pdr_falls_as_density_rises(self):
        """The tentpole's headline behaviour: same area, more nodes, more
        contenders per receiver, lower delivery ratio — and real drops."""
        sparse = run_density(3)
        dense = run_density(6)
        assert sparse.delivery_ratio > dense.delivery_ratio
        assert dense.packets_dropped > sparse.packets_dropped
        assert dense.packets_dropped > 0
        assert (
            dense.packets_delivered + dense.packets_dropped <= dense.packets_generated
        )

    def test_drops_counted_per_node(self):
        simulator = density_simulator(6)
        dense = simulator.run(max_time_s=0.05 * 86_400.0, stop_at_first_death=False)
        per_node = sum(node.packets_dropped for node in simulator.nodes.values())
        assert per_node == dense.packets_dropped
