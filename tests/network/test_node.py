"""Unit tests for batteries and sensor nodes."""

from __future__ import annotations

import pytest

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.node import Battery, SensorNode


@pytest.fixture()
def budget() -> ModemEnergyBudget:
    return ModemEnergyBudget(
        transmit_power_w=2.0,
        receive_frontend_power_w=0.05,
        processing_energy_per_estimation_j=10e-6,
        processing_idle_power_w=0.01,
    )


def make_node(budget, capacity=100.0, node_id=1, is_sink=False) -> SensorNode:
    return SensorNode(
        node_id=node_id,
        position=(0.0, 0.0),
        battery=Battery(capacity),
        energy_budget=budget,
        is_sink=is_sink,
    )


class TestBattery:
    def test_draw_and_state_of_charge(self):
        battery = Battery(10.0)
        assert battery.draw(4.0) == 4.0
        assert battery.remaining_j == pytest.approx(6.0)
        assert battery.state_of_charge == pytest.approx(0.6)
        assert not battery.is_empty

    def test_draw_clips_at_empty(self):
        battery = Battery(1.0)
        assert battery.draw(5.0) == 1.0
        assert battery.is_empty
        assert battery.draw(1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(0.0)
        with pytest.raises(ValueError):
            Battery(1.0).draw(-1.0)


class TestSensorNodeAccounting:
    def test_transmit_draws_battery_and_attributes(self, budget):
        node = make_node(budget)
        node.account_transmit(num_symbols=10)
        expected = budget.transmit_energy_j(10)
        assert node.report.transmit_j == pytest.approx(expected)
        assert node.battery.remaining_j == pytest.approx(100.0 - expected)
        assert node.packets_sent == 1

    def test_receive_attributes_frontend_and_processing(self, budget):
        node = make_node(budget)
        node.account_receive(num_symbols=10, forwarded=True)
        breakdown = budget.receive_energy_j(10)
        assert node.report.receive_frontend_j == pytest.approx(breakdown.receive_frontend_j)
        assert node.report.processing_j == pytest.approx(breakdown.processing_j)
        assert node.packets_received == 1
        assert node.packets_forwarded == 1

    def test_idle_accounting(self, budget):
        node = make_node(budget)
        node.account_idle(100.0)
        assert node.report.idle_j == pytest.approx(100.0 * budget.idle_power_w())

    def test_advance_time_accrues_idle(self, budget):
        node = make_node(budget)
        node.advance_time(50.0)
        node.advance_time(75.0)
        assert node.report.idle_j == pytest.approx(75.0 * budget.idle_power_w())
        with pytest.raises(ValueError):
            node.advance_time(10.0)

    def test_predrained_battery_deficit_is_kept(self, budget):
        """A battery handed over partially drained keeps its deficit — node
        accounting must not resurrect the missing energy."""
        battery = Battery(100.0)
        battery.draw(99.0)
        node = SensorNode(
            node_id=1, position=(0.0, 0.0), battery=battery, energy_budget=budget,
        )
        node.account_transmit(num_symbols=32)  # ~1.4 J > the 1 J left
        assert not node.is_alive
        assert battery.remaining_j == 0.0

    def test_death_when_battery_empty(self, budget):
        node = make_node(budget, capacity=0.5)
        assert node.is_alive
        node.account_transmit(num_symbols=32)  # costs ~1.4 J > 0.5 J
        assert not node.is_alive

    def test_sink_never_dies(self, budget):
        sink = make_node(budget, capacity=0.5, node_id=0, is_sink=True)
        sink.account_transmit(num_symbols=32)
        sink.account_transmit(num_symbols=32)
        assert sink.is_alive
        # but its energy is still attributed
        assert sink.report.transmit_j > 0.0

    def test_report_total_and_fraction(self, budget):
        node = make_node(budget)
        node.account_transmit(10)
        node.account_receive(10)
        node.account_idle(10.0)
        report = node.report
        assert report.total_j == pytest.approx(
            report.transmit_j + report.receive_frontend_j + report.processing_j + report.idle_j
        )
        assert 0.0 < report.fraction("transmit") < 1.0
        fractions = sum(
            report.fraction(c) for c in ("transmit", "receive_frontend", "processing", "idle")
        )
        assert fractions == pytest.approx(1.0)
