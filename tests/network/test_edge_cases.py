"""Edge-case coverage for topology, routing and degenerate traffic configs."""

from __future__ import annotations

import math

import pytest

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.lifetime import subtree_sizes
from repro.network.routing import shortest_path_routing
from repro.network.simulator import NetworkSimulator
from repro.network.topology import (
    Deployment,
    connectivity_graph,
    grid_deployment,
    random_deployment,
)
from repro.network.traffic import PeriodicTraffic


class TestSingleNodeNetwork:
    def test_single_node_deployment_rejected(self):
        with pytest.raises(ValueError, match="at least two nodes"):
            Deployment(positions={0: (0.0, 0.0)}, sink_id=0)

    def test_single_node_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_deployment(1, 1)

    def test_single_node_random_rejected(self):
        with pytest.raises(ValueError):
            random_deployment(1)

    def test_minimal_two_node_network_end_to_end(self):
        """Sink + one sensor: one-hop routing, every packet delivered."""
        deployment = Deployment(positions={0: (0.0, 0.0), 1: (100.0, 0.0)}, sink_id=0)
        graph = connectivity_graph(deployment, communication_range_m=150.0)
        routing = shortest_path_routing(graph, 0)
        assert routing.route(1) == [1, 0]
        assert routing.max_hops == 1
        assert subtree_sizes(routing) == {1: 1}
        simulator = NetworkSimulator(
            deployment=deployment,
            energy_budget=ModemEnergyBudget(),
            traffic=PeriodicTraffic(report_interval_s=60.0, packet_symbols=16,
                                    jitter_fraction=0.0),
            communication_range_m=150.0,
            battery_capacity_j=10_000.0,
        )
        result = simulator.run(max_time_s=600.0, stop_at_first_death=False)
        assert result.packets_generated == 11  # t = 0, 60, ..., 600
        assert result.delivery_ratio == 1.0


class TestDisconnectedNode:
    def test_disconnected_node_rejected_and_named(self):
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (10_000.0, 0.0)}
        with pytest.raises(ValueError, match=r"\[2\]"):
            connectivity_graph(Deployment(positions=positions, sink_id=0), 150.0)

    def test_disconnected_island_rejected(self):
        # nodes 2 and 3 reach each other but not the sink
        positions = {
            0: (0.0, 0.0), 1: (100.0, 0.0),
            2: (10_000.0, 0.0), 3: (10_100.0, 0.0),
        }
        with pytest.raises(ValueError, match="cannot reach the sink"):
            connectivity_graph(Deployment(positions=positions, sink_id=0), 150.0)

    def test_routing_rejects_graph_missing_sink(self):
        deployment = grid_deployment(2, 2, spacing_m=100.0)
        graph = connectivity_graph(deployment, communication_range_m=150.0)
        with pytest.raises(ValueError, match="sink id 99"):
            shortest_path_routing(graph, 99)


class TestConnectivityVectorisation:
    def test_boundary_distance_is_an_edge(self):
        """A pair at exactly the communication range must keep its edge (the
        vectorised candidate preselection must not drop boundary pairs)."""
        positions = {0: (0.0, 0.0), 1: (300.0, 0.0)}
        graph = connectivity_graph(Deployment(positions=positions, sink_id=0), 300.0)
        assert graph.has_edge(0, 1)
        assert graph.edges[0, 1]["weight"] == 300.0

    def test_edges_match_scalar_definition(self):
        deployment = random_deployment(30, area_m=(800.0, 800.0), rng=7)
        communication_range = 320.0
        graph = connectivity_graph(deployment, communication_range)
        ids = list(deployment.positions)
        expected = {
            (a, b)
            for i, a in enumerate(ids)
            for b in ids[i + 1 :]
            if deployment.distance(a, b) <= communication_range
        }
        got = {(min(a, b), max(a, b)) for a, b in graph.edges}
        assert got == {(min(a, b), max(a, b)) for a, b in expected}
        for a, b in graph.edges:
            assert graph.edges[a, b]["weight"] == deployment.distance(a, b)

    def test_position_array_roundtrip(self):
        deployment = grid_deployment(2, 3, spacing_m=50.0)
        ids, points = deployment.position_array()
        assert points.shape == (6, 2)
        for row, node_id in enumerate(ids):
            assert tuple(points[row]) == deployment.positions[node_id]
            assert math.hypot(*points[row]) == pytest.approx(
                deployment.distance(0, node_id) if node_id else 0.0
            )


class TestSubtreeSizes:
    def test_line_topology_sizes(self):
        """On a 1 x 4 line every node carries its whole downstream subtree."""
        deployment = grid_deployment(1, 4, spacing_m=100.0)
        graph = connectivity_graph(deployment, communication_range_m=150.0)
        routing = shortest_path_routing(graph, 0)
        assert subtree_sizes(routing) == {1: 3, 2: 2, 3: 1}

    def test_star_topology_sizes(self):
        positions = {
            0: (0.0, 0.0),
            1: (100.0, 0.0), 2: (-100.0, 0.0), 3: (0.0, 100.0),
        }
        graph = connectivity_graph(Deployment(positions=positions, sink_id=0), 150.0)
        routing = shortest_path_routing(graph, 0)
        assert subtree_sizes(routing) == {1: 1, 2: 1, 3: 1}


class TestDegenerateZeroTraffic:
    def test_zero_report_interval_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTraffic(report_interval_s=0.0)

    def test_zero_packet_symbols_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTraffic(packet_symbols=0)

    @pytest.mark.parametrize("batch", [False, True])
    def test_no_events_processed(self, batch):
        """max_events=0: the simulation observes no traffic at all — zero
        packets, delivery ratio NaN (undefined, not a division error or a
        fake-perfect 1.0), no lifetime."""
        simulator = NetworkSimulator(
            deployment=grid_deployment(2, 2, spacing_m=100.0),
            energy_budget=ModemEnergyBudget(),
            traffic=PeriodicTraffic(report_interval_s=60.0, packet_symbols=16,
                                    jitter_fraction=0.0),
            communication_range_m=150.0,
            battery_capacity_j=1_000.0,
            batch=batch,
        )
        result = simulator.run(max_time_s=100.0, max_events=0)
        assert result.packets_generated == 0
        assert result.packets_delivered == 0
        assert math.isnan(result.delivery_ratio)
        assert result.lifetime_days is None
        assert result.simulated_time_s == 0.0
        assert all(result.node_alive.values())

    @pytest.mark.parametrize("batch", [False, True])
    def test_horizon_shorter_than_first_reports(self, batch):
        """A horizon inside the stagger window sees only node 1's t=0 report."""
        simulator = NetworkSimulator(
            deployment=grid_deployment(2, 2, spacing_m=100.0),
            energy_budget=ModemEnergyBudget(),
            traffic=PeriodicTraffic(report_interval_s=10_000.0, packet_symbols=16,
                                    jitter_fraction=0.0),
            communication_range_m=150.0,
            battery_capacity_j=10_000.0,
            batch=batch,
        )
        result = simulator.run(max_time_s=5.0, stop_at_first_death=False)
        assert result.packets_generated == 1
        assert result.delivery_ratio == 1.0
