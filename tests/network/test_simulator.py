"""Unit and integration tests for the network simulator."""

from __future__ import annotations

import pytest

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.mac import SlottedAloha, TDMASchedule
from repro.network.simulator import NetworkSimulator
from repro.network.topology import grid_deployment
from repro.network.traffic import PeriodicTraffic


def make_simulator(
    battery_capacity_j: float = 5_000.0,
    processing_energy_j: float = 9.5e-6,
    mac=None,
    grid=(3, 3),
    report_interval_s: float = 60.0,
) -> NetworkSimulator:
    return NetworkSimulator(
        deployment=grid_deployment(*grid, spacing_m=200.0),
        energy_budget=ModemEnergyBudget(
            transmit_power_w=2.0,
            receive_frontend_power_w=0.05,
            processing_energy_per_estimation_j=processing_energy_j,
            processing_idle_power_w=0.01,
        ),
        traffic=PeriodicTraffic(report_interval_s=report_interval_s, packet_symbols=16,
                                jitter_fraction=0.0),
        communication_range_m=250.0,
        battery_capacity_j=battery_capacity_j,
        mac=mac,
        rng=0,
    )


class TestNetworkSimulator:
    def test_short_run_collects_packets(self):
        simulator = make_simulator()
        result = simulator.run(max_time_s=600.0, stop_at_first_death=False)
        assert result.packets_generated > 0
        assert result.packets_delivered > 0
        assert result.delivery_ratio == pytest.approx(1.0)
        assert result.first_death_time_s is None
        assert all(result.node_alive.values())

    def test_energy_attributed_to_components(self):
        simulator = make_simulator()
        result = simulator.run(max_time_s=600.0, stop_at_first_death=False)
        totals = result.total_energy_by_component()
        assert totals["transmit_j"] > 0.0
        assert totals["receive_frontend_j"] > 0.0
        assert totals["processing_j"] > 0.0
        assert totals["idle_j"] > 0.0

    def test_nodes_near_sink_forward_more(self):
        simulator = make_simulator()
        result = simulator.run(max_time_s=1200.0, stop_at_first_death=False)
        # node 1 is adjacent to the corner sink on the 3x3 grid and relays traffic,
        # node 8 is the far corner and only sends its own reports
        relay = result.node_reports[1]
        leaf = result.node_reports[8]
        assert relay.transmit_j > leaf.transmit_j
        assert relay.receive_frontend_j > leaf.receive_frontend_j

    def test_small_battery_leads_to_death(self):
        simulator = make_simulator(battery_capacity_j=40.0, report_interval_s=30.0)
        result = simulator.run(max_time_s=10 * 86_400.0, stop_at_first_death=True)
        assert result.first_death_time_s is not None
        assert result.lifetime_days is not None
        assert result.lifetime_days < 10.0
        assert not all(result.node_alive.values())

    def test_higher_processing_energy_shortens_lifetime(self):
        cheap = make_simulator(battery_capacity_j=100.0, processing_energy_j=9.5e-6,
                               report_interval_s=20.0)
        expensive = make_simulator(battery_capacity_j=100.0, processing_energy_j=2000.4e-6,
                                   report_interval_s=20.0)
        lifetime_cheap = cheap.run(max_time_s=5 * 86_400.0).first_death_time_s
        lifetime_expensive = expensive.run(max_time_s=5 * 86_400.0).first_death_time_s
        assert lifetime_cheap is not None and lifetime_expensive is not None
        assert lifetime_expensive <= lifetime_cheap

    def test_aloha_mac_consumes_more_energy_than_tdma(self):
        tdma = make_simulator(mac=TDMASchedule(num_nodes=8, slot_duration_s=1.0))
        aloha = make_simulator(mac=SlottedAloha(offered_load=1.0))
        tdma_result = tdma.run(max_time_s=600.0, stop_at_first_death=False)
        aloha_result = aloha.run(max_time_s=600.0, stop_at_first_death=False)
        assert (
            aloha_result.total_energy_by_component()["transmit_j"]
            > tdma_result.total_energy_by_component()["transmit_j"]
        )

    def test_sink_is_never_counted_dead(self):
        simulator = make_simulator(battery_capacity_j=20.0, report_interval_s=30.0)
        result = simulator.run(max_time_s=5 * 86_400.0, stop_at_first_death=False)
        assert result.node_alive[simulator.deployment.sink_id]

    def test_only_staggered_first_reports_within_short_horizon(self):
        # reports are staggered over the interval; within 5 s only the first
        # node's initial report (offset 0) fires
        simulator = make_simulator(report_interval_s=10_000.0)
        result = simulator.run(max_time_s=5.0, stop_at_first_death=False)
        assert result.packets_generated == 1
        assert result.delivery_ratio == 1.0

    def test_delivery_ratio_nan_when_no_packets(self):
        import math

        from repro.network.simulator import NetworkSimulationResult

        empty = NetworkSimulationResult(
            first_death_time_s=None, simulated_time_s=1.0,
            packets_generated=0, packets_delivered=0,
            node_reports={}, node_alive={},
        )
        # 0/0 packets is an undefined measurement, not a perfect (or zero)
        # delivery ratio — downstream averages must be able to skip it
        assert math.isnan(empty.delivery_ratio)
        assert empty.lifetime_days is None
