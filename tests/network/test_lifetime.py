"""Unit tests for the analytical lifetime model (experiment E9 support)."""

from __future__ import annotations

import pytest

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.lifetime import analytical_node_lifetime, lifetime_by_platform
from repro.network.routing import shortest_path_routing
from repro.network.topology import connectivity_graph, grid_deployment
from repro.network.traffic import PeriodicTraffic


@pytest.fixture(scope="module")
def routing():
    deployment = grid_deployment(3, 3, spacing_m=200.0)
    graph = connectivity_graph(deployment, communication_range_m=250.0)
    return shortest_path_routing(graph, deployment.sink_id)


@pytest.fixture(scope="module")
def traffic():
    return PeriodicTraffic(report_interval_s=120.0, packet_symbols=16, jitter_fraction=0.0)


class TestAnalyticalNodeLifetime:
    def test_every_sensor_node_estimated(self, routing, traffic):
        estimates = analytical_node_lifetime(
            routing, ModemEnergyBudget(), traffic, battery_capacity_j=50_000.0
        )
        assert set(estimates) == {n for n in routing.next_hop if n != routing.sink_id}
        assert all(e.lifetime_s > 0 for e in estimates.values())

    def test_relay_nodes_die_first(self, routing, traffic):
        estimates = analytical_node_lifetime(
            routing, ModemEnergyBudget(), traffic, battery_capacity_j=50_000.0
        )
        bottleneck = min(estimates.values(), key=lambda e: e.lifetime_s)
        leaf = estimates[8]  # far corner: forwards nothing
        assert bottleneck.transmissions_per_interval > leaf.transmissions_per_interval
        assert bottleneck.lifetime_s <= leaf.lifetime_s

    def test_lifetime_scales_with_battery(self, routing, traffic):
        small = analytical_node_lifetime(routing, ModemEnergyBudget(), traffic, 10_000.0)
        large = analytical_node_lifetime(routing, ModemEnergyBudget(), traffic, 20_000.0)
        for node in small:
            assert large[node].lifetime_s == pytest.approx(2 * small[node].lifetime_s)

    def test_mac_retransmissions_shorten_lifetime(self, routing, traffic):
        clean = analytical_node_lifetime(routing, ModemEnergyBudget(), traffic, 50_000.0)
        retry = analytical_node_lifetime(
            routing, ModemEnergyBudget(), traffic, 50_000.0, mac_transmissions_per_packet=2.0
        )
        assert min(r.lifetime_s for r in retry.values()) < min(
            c.lifetime_s for c in clean.values()
        )

    def test_validation(self, routing, traffic):
        with pytest.raises(ValueError):
            analytical_node_lifetime(routing, ModemEnergyBudget(), traffic, 0.0)


class TestLifetimeByPlatform:
    def test_fpga_platform_outlives_microblaze(self, routing, traffic):
        lifetimes = lifetime_by_platform(
            routing,
            traffic,
            battery_capacity_j=50_000.0,
            platform_processing_energy_j={
                "MicroBlaze": 2000.40e-6,
                "Virtex-4 112FC 8bit": 9.50e-6,
            },
            platform_idle_power_w={
                # continuous-detection listening power: one estimation per 22.4 ms
                "MicroBlaze": 2000.40e-6 / 22.4e-3,
                "Virtex-4 112FC 8bit": 9.50e-6 / 22.4e-3,
            },
        )
        assert lifetimes["Virtex-4 112FC 8bit"] > lifetimes["MicroBlaze"]

    def test_ordering_follows_processing_energy(self, routing, traffic):
        platforms = {
            "MicroBlaze": 2000.40e-6,
            "DSP": 500.76e-6,
            "FPGA serial": 360.52e-6,
            "FPGA parallel": 9.50e-6,
        }
        idle = {k: v / 22.4e-3 for k, v in platforms.items()}
        lifetimes = lifetime_by_platform(
            routing, traffic, 50_000.0, platforms, platform_idle_power_w=idle
        )
        ordered = sorted(platforms, key=platforms.get)
        values = [lifetimes[name] for name in ordered]
        assert values == sorted(values, reverse=True)

    def test_empty_platform_dict_rejected(self, routing, traffic):
        with pytest.raises(ValueError):
            lifetime_by_platform(routing, traffic, 1000.0, {})
