"""Unit tests for the periodic traffic model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.traffic import PeriodicTraffic


class TestPeriodicTraffic:
    def test_reports_per_day(self):
        assert PeriodicTraffic(report_interval_s=300.0).reports_per_day() == pytest.approx(288.0)

    def test_first_offset_staggers_nodes(self):
        traffic = PeriodicTraffic(report_interval_s=100.0)
        offsets = [traffic.first_offset(i, 4) for i in range(4)]
        assert offsets == [0.0, 25.0, 50.0, 75.0]

    def test_next_interval_without_jitter(self):
        traffic = PeriodicTraffic(report_interval_s=60.0, jitter_fraction=0.0)
        assert traffic.next_interval() == 60.0

    def test_next_interval_with_jitter_bounded(self):
        traffic = PeriodicTraffic(report_interval_s=60.0, jitter_fraction=0.2)
        rng = np.random.default_rng(0)
        intervals = [traffic.next_interval(rng) for _ in range(200)]
        assert all(48.0 <= value <= 72.0 for value in intervals)
        assert np.mean(intervals) == pytest.approx(60.0, rel=0.05)

    def test_first_offset_out_of_range_node_raises(self):
        """An out-of-range node index is a caller bug; the old modulo wrap
        silently aliased two nodes onto the same offset."""
        traffic = PeriodicTraffic(report_interval_s=100.0)
        with pytest.raises(ValueError):
            traffic.first_offset(4, 4)
        with pytest.raises(ValueError):
            traffic.first_offset(-1, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicTraffic(report_interval_s=0.0)
        with pytest.raises(ValueError):
            PeriodicTraffic(packet_symbols=0)
        with pytest.raises(ValueError):
            PeriodicTraffic(jitter_fraction=1.0)
