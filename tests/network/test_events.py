"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.network.events import EventQueue, Scheduler


class TestEventQueue:
    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda s, p: order.append(p), "first")
        queue.push(1.0, lambda s, p: order.append(p), "second")
        a = queue.pop()
        b = queue.pop()
        assert a.payload == "first" and b.payload == "second"

    def test_time_ordering(self):
        queue = EventQueue()
        queue.push(5.0, lambda s, p: None, "late")
        queue.push(1.0, lambda s, p: None, "early")
        assert queue.pop().payload == "early"

    def test_cancellation(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda s, p: None, "cancel-me")
        queue.push(2.0, lambda s, p: None, "keep")
        event.cancel()
        assert len(queue) == 1
        assert queue.pop().payload == "keep"

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda s, p: None)
        queue.push(3.0, lambda s, p: None)
        event.cancel()
        assert queue.peek_time() == 3.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert not queue

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda s, p: None)


class TestScheduler:
    def test_events_run_in_time_order(self):
        scheduler = Scheduler()
        times = []
        scheduler.schedule_at(2.0, lambda s, p: times.append(s.now))
        scheduler.schedule_at(1.0, lambda s, p: times.append(s.now))
        scheduler.run()
        assert times == [1.0, 2.0]
        assert scheduler.events_processed == 2

    def test_schedule_after_relative_delay(self):
        scheduler = Scheduler()
        seen = []

        def chain(s: Scheduler, payload):
            seen.append(s.now)
            if len(seen) < 3:
                s.schedule_after(10.0, chain)

        scheduler.schedule_at(0.0, chain)
        scheduler.run()
        assert seen == [0.0, 10.0, 20.0]

    def test_run_until_stops_and_advances_clock(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(5.0, lambda s, p: fired.append(s.now))
        scheduler.schedule_at(50.0, lambda s, p: fired.append(s.now))
        scheduler.run(until=10.0)
        assert fired == [5.0]
        assert scheduler.now == 10.0
        scheduler.run()
        assert fired == [5.0, 50.0]

    def test_max_events_cap(self):
        scheduler = Scheduler()

        def endless(s: Scheduler, payload):
            s.schedule_after(1.0, endless)

        scheduler.schedule_at(0.0, endless)
        scheduler.run(max_events=25)
        assert scheduler.events_processed == 25

    def test_cannot_schedule_in_the_past(self):
        scheduler = Scheduler()
        scheduler.schedule_at(1.0, lambda s, p: None)
        scheduler.run()
        with pytest.raises(ValueError):
            scheduler.schedule_at(0.5, lambda s, p: None)

    def test_run_until_with_no_events_advances_clock(self):
        scheduler = Scheduler()
        scheduler.run(until=7.0)
        assert scheduler.now == 7.0
