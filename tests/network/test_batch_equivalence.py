"""Seed-locked equivalence: batched network engine vs the event loop.

The batched engine (:mod:`repro.network.batch`) must reproduce the event
loop *exactly* — not approximately — because node accounting is closed form
over integer charge counts and both engines evaluate the same float
expressions.  Every assertion here is ``==`` on floats: death times,
lifetime days, delivery ratios, per-node per-component energy.
"""

from __future__ import annotations

import math

import pytest

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.batch import generate_report_schedule, simulate_network_trials
from repro.network.lifetime import lifetime_by_platform
from repro.network.mac import CsmaMac, SlottedAloha, TDMASchedule
from repro.network.routing import TtlFlooding
from repro.network.simulator import NetworkSimulator
from repro.network.topology import LinearMobility, grid_deployment, random_deployment
from repro.network.traffic import PeriodicTraffic
from repro.utils.rng import as_rng

# three Table 3 platforms spanning the energy range (uJ per estimation)
PLATFORMS = {
    "MicroBlaze": 2000.40,
    "TI C6713 DSP": 500.76,
    "Virtex-4 112FC 8bit": 9.50,
}

TOPOLOGIES = {
    "grid": lambda: grid_deployment(4, 4, spacing_m=200.0),
    "random": lambda: random_deployment(12, area_m=(600.0, 600.0), rng=3),
}


def make_simulator(
    batch: bool,
    platform_energy_uj: float = 500.76,
    deployment=None,
    seed: int = 0,
    jitter: float = 0.1,
    battery_j: float = 150.0,
    mac=None,
    interval_s: float = 30.0,
    protocol=None,
    mobility=None,
) -> NetworkSimulator:
    kwargs = {}
    if protocol is not None:
        kwargs["protocol"] = protocol
    return NetworkSimulator(
        deployment=deployment if deployment is not None else grid_deployment(4, 4, spacing_m=200.0),
        energy_budget=ModemEnergyBudget(
            transmit_power_w=2.0,
            receive_frontend_power_w=0.05,
            processing_energy_per_estimation_j=platform_energy_uj * 1e-6,
            processing_idle_power_w=0.01,
        ),
        traffic=PeriodicTraffic(
            report_interval_s=interval_s, packet_symbols=16, jitter_fraction=jitter
        ),
        communication_range_m=300.0,
        battery_capacity_j=battery_j,
        mac=mac,
        mobility=mobility,
        rng=seed,
        batch=batch,
        **kwargs,
    )


def assert_identical(reference, batched):
    """Every observable of the two results must be exactly equal."""
    assert batched.first_death_time_s == reference.first_death_time_s
    assert batched.lifetime_days == reference.lifetime_days
    assert batched.simulated_time_s == reference.simulated_time_s
    assert batched.packets_generated == reference.packets_generated
    assert batched.packets_delivered == reference.packets_delivered
    assert batched.packets_dropped == reference.packets_dropped
    # NaN-safe: a zero-packet trial's delivery ratio is NaN on both sides
    assert batched.delivery_ratio == reference.delivery_ratio or (
        math.isnan(batched.delivery_ratio) and math.isnan(reference.delivery_ratio)
    )
    assert batched.node_alive == reference.node_alive
    assert set(batched.node_reports) == set(reference.node_reports)
    for node_id, ref_report in reference.node_reports.items():
        got = batched.node_reports[node_id]
        assert got.transmit_j == ref_report.transmit_j, node_id
        assert got.receive_frontend_j == ref_report.receive_frontend_j, node_id
        assert got.processing_j == ref_report.processing_j, node_id
        assert got.idle_j == ref_report.idle_j, node_id
    assert batched.total_energy_by_component() == reference.total_energy_by_component()


class TestSeedLockedEquivalence:
    @pytest.mark.parametrize("platform,energy_uj", sorted(PLATFORMS.items()))
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_platforms_and_topologies(self, platform, energy_uj, topology, seed):
        kwargs = dict(platform_energy_uj=energy_uj, seed=seed)
        reference = make_simulator(
            False, deployment=TOPOLOGIES[topology](), **kwargs
        ).run(max_time_s=86_400.0)
        batched = make_simulator(
            True, deployment=TOPOLOGIES[topology](), **kwargs
        ).run(max_time_s=86_400.0)
        # the workload must actually exercise a death for the comparison to bite
        assert reference.first_death_time_s is not None
        assert_identical(reference, batched)

    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    def test_with_and_without_jitter(self, jitter):
        reference = make_simulator(False, jitter=jitter).run(max_time_s=86_400.0)
        batched = make_simulator(True, jitter=jitter).run(max_time_s=86_400.0)
        assert_identical(reference, batched)

    @pytest.mark.parametrize(
        "mac",
        [
            None,
            TDMASchedule(num_nodes=15, slot_duration_s=1.0),
            SlottedAloha(offered_load=1.0),  # expected transmissions > 1
        ],
    )
    def test_mac_models(self, mac):
        reference = make_simulator(False, mac=mac).run(max_time_s=86_400.0)
        batched = make_simulator(True, mac=mac).run(max_time_s=86_400.0)
        assert_identical(reference, batched)

    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    def test_run_past_deaths(self, jitter):
        """stop_at_first_death=False: the engine keeps exact accounting
        through the whole death cascade (alive set shrinking epoch by epoch)."""
        reference = make_simulator(False, jitter=jitter, battery_j=100.0).run(
            max_time_s=4 * 3_600.0, stop_at_first_death=False
        )
        batched = make_simulator(True, jitter=jitter, battery_j=100.0).run(
            max_time_s=4 * 3_600.0, stop_at_first_death=False
        )
        assert sum(not alive for alive in reference.node_alive.values()) > 1
        assert_identical(reference, batched)

    def test_no_death_horizon_cut(self):
        reference = make_simulator(False, battery_j=50_000.0).run(max_time_s=3_600.0)
        batched = make_simulator(True, battery_j=50_000.0).run(max_time_s=3_600.0)
        assert reference.first_death_time_s is None
        assert reference.lifetime_days is None
        assert_identical(reference, batched)

    def test_max_events_cap(self):
        reference = make_simulator(False).run(
            max_time_s=86_400.0, stop_at_first_death=False, max_events=100
        )
        batched = make_simulator(True).run(
            max_time_s=86_400.0, stop_at_first_death=False, max_events=100
        )
        assert reference.packets_generated <= 100
        assert_identical(reference, batched)

    def test_zero_events_degenerate(self):
        reference = make_simulator(False).run(max_time_s=10.0, max_events=0)
        batched = make_simulator(True).run(max_time_s=10.0, max_events=0)
        assert reference.packets_generated == 0
        # an undefined ratio is NaN, not a fake-perfect (or fake-zero) number
        assert math.isnan(reference.delivery_ratio)
        assert reference.lifetime_days is None
        assert_identical(reference, batched)

    def test_chunked_schedule_continuation(self):
        """A run spanning many schedule chunks (tiny interval) stays exact —
        the periodic stream's cumsum continuation matches the scheduler's
        sequential float accumulation across chunk boundaries."""
        kwargs = dict(jitter=0.0, interval_s=2.0, battery_j=60_000.0)
        reference = make_simulator(False, **kwargs).run(
            max_time_s=30_000.0, stop_at_first_death=False
        )
        batched = make_simulator(True, **kwargs).run(
            max_time_s=30_000.0, stop_at_first_death=False
        )
        assert reference.packets_generated > 10_000
        assert_identical(reference, batched)


class TestContentionEquivalence:
    """The general (contention / flooding / mobility) batch path must match
    the event loop bit for bit, including the per-packet collision draws and
    the drop counters — the counter-based RNG makes the draws a pure function
    of the event index, so both engines observe identical outcomes."""

    CSMA = CsmaMac(channel_load=0.3, max_attempts=3, capture_probability=0.1)

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_csma_routed(self, topology, seed):
        kwargs = dict(mac=self.CSMA, seed=seed)
        reference = make_simulator(
            False, deployment=TOPOLOGIES[topology](), **kwargs
        ).run(max_time_s=86_400.0)
        batched = make_simulator(
            True, deployment=TOPOLOGIES[topology](), **kwargs
        ).run(max_time_s=86_400.0)
        assert reference.packets_dropped > 0  # contention must actually bite
        assert_identical(reference, batched)

    @pytest.mark.parametrize("mac", [None, CSMA, SlottedAloha(offered_load=1.0)])
    def test_flooding(self, mac):
        kwargs = dict(protocol=TtlFlooding(ttl=4), mac=mac)
        reference = make_simulator(False, **kwargs).run(max_time_s=86_400.0)
        batched = make_simulator(True, **kwargs).run(max_time_s=86_400.0)
        assert reference.packets_generated > 0
        assert_identical(reference, batched)

    @pytest.mark.parametrize(
        "protocol,mac",
        [
            (None, CSMA),
            (TtlFlooding(ttl=3), None),
            (TtlFlooding(ttl=3), CSMA),
        ],
    )
    def test_mobility(self, protocol, mac):
        """Epoch-by-epoch topology rebuild under drift, with and without
        contention; partitioned routed sources count as generated-not-delivered
        on both engines."""
        mobility = LinearMobility(speed_mps=0.05, epoch_s=3_600.0, heading_seed=1)
        kwargs = dict(protocol=protocol, mac=mac, mobility=mobility, battery_j=3_000.0)
        reference = make_simulator(False, **kwargs).run(
            max_time_s=6 * 3_600.0, stop_at_first_death=False
        )
        batched = make_simulator(True, **kwargs).run(
            max_time_s=6 * 3_600.0, stop_at_first_death=False
        )
        assert_identical(reference, batched)

    def test_mobility_long_horizon_partition(self):
        """Many epoch rollovers until the deployment fully partitions: routed
        packets stop being deliverable but the accounting stays exact."""
        mobility = LinearMobility(speed_mps=0.2, epoch_s=1_800.0, heading_seed=3)
        kwargs = dict(
            mac=self.CSMA, mobility=mobility, battery_j=50_000.0, interval_s=120.0
        )
        reference = make_simulator(False, **kwargs).run(
            max_time_s=12 * 3_600.0, stop_at_first_death=False
        )
        batched = make_simulator(True, **kwargs).run(
            max_time_s=12 * 3_600.0, stop_at_first_death=False
        )
        assert reference.packets_delivered < reference.packets_generated
        assert_identical(reference, batched)

    def test_csma_death_cascade(self):
        """stop_at_first_death=False under contention: the segmented scan and
        boundary replay stay exact through the whole death cascade."""
        reference = make_simulator(False, mac=self.CSMA, battery_j=100.0).run(
            max_time_s=4 * 3_600.0, stop_at_first_death=False
        )
        batched = make_simulator(True, mac=self.CSMA, battery_j=100.0).run(
            max_time_s=4 * 3_600.0, stop_at_first_death=False
        )
        assert sum(not alive for alive in reference.node_alive.values()) > 1
        assert_identical(reference, batched)

    def test_trials_helper_with_contention(self):
        """simulate_network_trials falls back to per-trial batched engines for
        the general path and still matches the event loop seed for seed."""
        deployment = grid_deployment(3, 3, spacing_m=200.0)
        budget = ModemEnergyBudget(
            transmit_power_w=2.0,
            receive_frontend_power_w=0.05,
            processing_energy_per_estimation_j=500.76e-6,
            processing_idle_power_w=0.01,
        )
        shared = dict(
            traffic=PeriodicTraffic(
                report_interval_s=30.0, packet_symbols=16, jitter_fraction=0.1
            ),
            communication_range_m=300.0,
            battery_capacity_j=150.0,
            seeds=[0, 1, 2],
            max_time_s=86_400.0,
            mac=self.CSMA,
            protocol=TtlFlooding(ttl=3),
        )
        batched = simulate_network_trials(deployment, budget, batch=True, **shared)
        reference = simulate_network_trials(deployment, budget, batch=False, **shared)
        assert len(batched) == len(reference) == 3
        for batch_result, loop_result in zip(batched, reference):
            assert_identical(loop_result, batch_result)


class TestScheduleGeneration:
    def test_rng_stream_replay_matches_event_loop_draws(self):
        """The jittered schedule consumes the simulator's RNG exactly as the
        scheduler does: the same seed yields the same event trajectory."""
        traffic = PeriodicTraffic(report_interval_s=60.0, packet_symbols=16, jitter_fraction=0.1)
        times_a, sources_a = generate_report_schedule(
            traffic, [1, 2, 3], as_rng(42), 3_600.0, 10_000
        )
        times_b, sources_b = generate_report_schedule(
            traffic, [1, 2, 3], as_rng(42), 3_600.0, 10_000
        )
        assert (times_a == times_b).all()
        assert (sources_a == sources_b).all()
        assert (times_a[:-1] <= times_a[1:]).all()
        assert times_a[-1] <= 3_600.0

    def test_periodic_schedule_is_staggered_rounds(self):
        traffic = PeriodicTraffic(report_interval_s=100.0, packet_symbols=16, jitter_fraction=0.0)
        times, sources = generate_report_schedule(traffic, [5, 6, 7, 8], as_rng(0), 350.0, 10_000)
        # 4 nodes staggered at 0/25/50/75 within the 100 s interval; the last
        # node's round-3 report (t=375) falls beyond the 350 s horizon
        assert len(times) == 15
        assert list(sources[:4]) == [5, 6, 7, 8]
        assert times[0] == 0.0
        assert times[-1] == 350.0
        assert (times[:-1] <= times[1:]).all()


class TestMultiTrialBatching:
    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    def test_trials_match_event_loop_seed_for_seed(self, jitter):
        deployment = grid_deployment(4, 4, spacing_m=200.0)
        budget = ModemEnergyBudget(
            transmit_power_w=2.0,
            receive_frontend_power_w=0.05,
            processing_energy_per_estimation_j=500.76e-6,
            processing_idle_power_w=0.01,
        )
        traffic = PeriodicTraffic(
            report_interval_s=30.0, packet_symbols=16, jitter_fraction=jitter
        )
        shared = dict(
            traffic=traffic,
            communication_range_m=300.0,
            battery_capacity_j=150.0,
            seeds=[0, 1, 2, 3],
            max_time_s=86_400.0,
        )
        batched = simulate_network_trials(deployment, budget, batch=True, **shared)
        reference = simulate_network_trials(deployment, budget, batch=False, **shared)
        assert len(batched) == len(reference) == 4
        for batch_result, loop_result in zip(batched, reference):
            assert batch_result.first_death_time_s is not None
            assert_identical(loop_result, batch_result)

    def test_trials_mixed_censoring(self):
        """Trials that outlive the horizon finalise cleanly alongside dying ones."""
        deployment = grid_deployment(3, 3, spacing_m=200.0)
        budget = ModemEnergyBudget(processing_energy_per_estimation_j=9.5e-6)
        traffic = PeriodicTraffic(report_interval_s=600.0, packet_symbols=16, jitter_fraction=0.1)
        results = simulate_network_trials(
            deployment,
            budget,
            traffic=traffic,
            communication_range_m=300.0,
            battery_capacity_j=50_000.0,
            seeds=[0, 1],
            max_time_s=3_600.0,
        )
        assert [r.lifetime_days for r in results] == [None, None]
        assert all(r.delivery_ratio == 1.0 for r in results)


class TestAnalyticalLifetimeBatch:
    def test_vectorised_lifetimes_bit_equal_scalar(self):
        deployment = grid_deployment(3, 3, spacing_m=200.0)
        simulator = NetworkSimulator(
            deployment=deployment,
            energy_budget=ModemEnergyBudget(),
            communication_range_m=250.0,
        )
        traffic = PeriodicTraffic(report_interval_s=120.0, packet_symbols=16, jitter_fraction=0.0)
        platforms = {name: uj * 1e-6 for name, uj in PLATFORMS.items()}
        idle = {name: joules / 22.4e-3 for name, joules in platforms.items()}
        scalar = lifetime_by_platform(
            simulator.routing, traffic, 50_000.0, platforms,
            platform_idle_power_w=idle, batch=False,
        )
        vectorised = lifetime_by_platform(
            simulator.routing, traffic, 50_000.0, platforms,
            platform_idle_power_w=idle, batch=True,
        )
        assert vectorised == scalar  # exact float equality, platform by platform
