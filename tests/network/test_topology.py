"""Unit tests for deployments and connectivity graphs."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.network.topology import (
    Deployment,
    connectivity_graph,
    grid_deployment,
    random_deployment,
)


class TestGridDeployment:
    def test_node_count_and_positions(self):
        deployment = grid_deployment(3, 4, spacing_m=100.0)
        assert deployment.num_nodes == 12
        assert deployment.positions[0] == (0.0, 0.0)
        assert deployment.positions[11] == (300.0, 200.0)

    def test_neighbour_distance_is_spacing(self):
        deployment = grid_deployment(2, 2, spacing_m=150.0)
        assert deployment.distance(0, 1) == pytest.approx(150.0)
        assert deployment.distance(0, 3) == pytest.approx(150.0 * 2**0.5)

    def test_max_pairwise_distance(self):
        deployment = grid_deployment(2, 3, spacing_m=100.0)
        assert deployment.max_pairwise_distance() == pytest.approx((200**2 + 100**2) ** 0.5)

    def test_single_node_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_deployment(1, 1)

    def test_paper_scale_deployment(self):
        # "10s to 100s of nodes spaced ... up to a few hundred meters"
        deployment = grid_deployment(10, 10, spacing_m=200.0)
        assert deployment.num_nodes == 100


class TestRandomDeployment:
    def test_reproducible(self):
        a = random_deployment(20, rng=0)
        b = random_deployment(20, rng=0)
        assert a.positions == b.positions

    def test_sink_at_center(self):
        deployment = random_deployment(10, area_m=(800.0, 600.0), rng=1)
        assert deployment.positions[0] == (400.0, 300.0)
        assert deployment.sink_id == 0

    def test_positions_inside_area(self):
        deployment = random_deployment(50, area_m=(500.0, 400.0), rng=2)
        for x, y in deployment.positions.values():
            assert 0.0 <= x <= 500.0
            assert 0.0 <= y <= 400.0

    def test_minimum_two_nodes(self):
        with pytest.raises(ValueError):
            random_deployment(1)


class TestDeploymentValidation:
    def test_sink_must_be_deployed(self):
        with pytest.raises(ValueError):
            Deployment(positions={1: (0.0, 0.0), 2: (1.0, 1.0)}, sink_id=0)


class TestConnectivityGraph:
    def test_grid_with_sufficient_range_is_connected(self):
        deployment = grid_deployment(4, 4, spacing_m=200.0)
        graph = connectivity_graph(deployment, communication_range_m=250.0)
        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 16

    def test_edge_weights_are_distances(self):
        deployment = grid_deployment(2, 2, spacing_m=100.0)
        graph = connectivity_graph(deployment, communication_range_m=120.0)
        assert graph.edges[0, 1]["weight"] == pytest.approx(100.0)
        assert not graph.has_edge(0, 3)  # diagonal (141 m) exceeds the 120 m range

    def test_disconnected_deployment_rejected(self):
        deployment = grid_deployment(1, 3, spacing_m=500.0)
        with pytest.raises(ValueError, match="cannot reach the sink"):
            connectivity_graph(deployment, communication_range_m=300.0)

    def test_larger_range_adds_edges(self):
        deployment = grid_deployment(3, 3, spacing_m=200.0)
        short = connectivity_graph(deployment, communication_range_m=250.0)
        long = connectivity_graph(deployment, communication_range_m=450.0)
        assert long.number_of_edges() > short.number_of_edges()
