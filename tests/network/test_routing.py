"""Unit tests for static shortest-path routing."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.network.routing import shortest_path_routing
from repro.network.topology import connectivity_graph, grid_deployment


@pytest.fixture()
def grid_graph():
    deployment = grid_deployment(3, 3, spacing_m=200.0)
    return connectivity_graph(deployment, communication_range_m=250.0)


class TestShortestPathRouting:
    def test_sink_routes_to_itself(self, grid_graph):
        routing = shortest_path_routing(grid_graph, sink_id=0)
        assert routing.next_hop[0] == 0
        assert routing.hops(0) == 0

    def test_every_node_has_route(self, grid_graph):
        routing = shortest_path_routing(grid_graph, sink_id=0)
        assert set(routing.next_hop) == set(grid_graph.nodes)
        for node in grid_graph.nodes:
            path = routing.route(node)
            assert path[0] == node and path[-1] == 0

    def test_next_hop_is_neighbour_on_path(self, grid_graph):
        routing = shortest_path_routing(grid_graph, sink_id=0)
        for node in grid_graph.nodes:
            if node == 0:
                continue
            assert grid_graph.has_edge(node, routing.next_hop[node])
            assert routing.route(node)[1] == routing.next_hop[node]

    def test_hop_counts_on_grid(self, grid_graph):
        routing = shortest_path_routing(grid_graph, sink_id=0)
        # node 8 is the far corner of the 3x3 grid -> 4 hops along the lattice
        assert routing.hops(8) == 4
        assert routing.hops(1) == 1
        assert routing.max_hops == 4

    def test_routes_minimise_distance(self, grid_graph):
        routing = shortest_path_routing(grid_graph, sink_id=0)
        for node in grid_graph.nodes:
            path = routing.route(node)
            length = sum(
                grid_graph.edges[a, b]["weight"] for a, b in zip(path, path[1:])
            )
            expected = nx.shortest_path_length(grid_graph, node, 0, weight="weight")
            assert length == pytest.approx(expected)

    def test_unknown_sink_rejected(self, grid_graph):
        with pytest.raises(ValueError):
            shortest_path_routing(grid_graph, sink_id=99)

    def test_unreachable_node_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1, weight=1.0)
        with pytest.raises(ValueError):
            shortest_path_routing(graph, sink_id=0)
