"""Unit tests for the TDMA and slotted-ALOHA MAC models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.network.mac import SlottedAloha, TDMASchedule


class TestTDMASchedule:
    def test_frame_duration(self):
        mac = TDMASchedule(num_nodes=10, slot_duration_s=0.8)
        assert mac.frame_duration_s == pytest.approx(8.0)

    def test_slot_start_times(self):
        mac = TDMASchedule(num_nodes=4, slot_duration_s=1.0)
        assert mac.slot_start(0) == 0.0
        assert mac.slot_start(3) == 3.0
        assert mac.slot_start(1, frame_index=2) == pytest.approx(9.0)

    def test_no_collisions(self):
        assert TDMASchedule(8, 1.0).expected_transmissions_per_packet() == 1.0

    def test_wait_time(self):
        mac = TDMASchedule(num_nodes=4, slot_duration_s=1.0)
        assert mac.wait_time_s(2, ready_time_s=0.5) == pytest.approx(1.5)
        # if the slot already passed this frame, wait for the next frame
        assert mac.wait_time_s(0, ready_time_s=0.5) == pytest.approx(3.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TDMASchedule(0, 1.0)
        with pytest.raises(ValueError):
            TDMASchedule(4, 1.0).slot_start(4)


class TestSlottedAloha:
    def test_success_probability(self):
        mac = SlottedAloha(offered_load=0.5)
        assert mac.success_probability == pytest.approx(math.exp(-0.5))

    def test_peak_throughput_at_load_one(self):
        assert SlottedAloha(1.0).throughput == pytest.approx(1.0 / math.e)
        assert SlottedAloha(0.2).throughput < SlottedAloha(1.0).throughput
        assert SlottedAloha(4.0).throughput < SlottedAloha(1.0).throughput

    def test_expected_transmissions_zero_load(self):
        assert SlottedAloha(0.0).expected_transmissions_per_packet() == 1.0

    def test_expected_transmissions_increase_with_load(self):
        low = SlottedAloha(0.1).expected_transmissions_per_packet()
        high = SlottedAloha(1.5).expected_transmissions_per_packet()
        assert high > low > 1.0

    def test_expected_transmissions_close_to_untruncated_for_small_load(self):
        mac = SlottedAloha(0.3, max_attempts=50)
        assert mac.expected_transmissions_per_packet() == pytest.approx(
            1.0 / mac.success_probability, rel=1e-3
        )

    def test_delivery_probability(self):
        mac = SlottedAloha(1.0, max_attempts=1)
        assert mac.delivery_probability() == pytest.approx(math.exp(-1.0))
        assert SlottedAloha(1.0, max_attempts=20).delivery_probability() > 0.99

    @given(load=st.floats(min_value=0.0, max_value=5.0))
    def test_expected_attempts_bounded_by_cap_property(self, load):
        mac = SlottedAloha(load, max_attempts=10)
        expected = mac.expected_transmissions_per_packet()
        assert 1.0 <= expected <= 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlottedAloha(-0.1)
        with pytest.raises(ValueError):
            SlottedAloha(0.5, max_attempts=0)
