"""Unit tests for the TDMA and slotted-ALOHA MAC models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.network.mac import SlottedAloha, TDMASchedule


class TestTDMASchedule:
    def test_frame_duration(self):
        mac = TDMASchedule(num_nodes=10, slot_duration_s=0.8)
        assert mac.frame_duration_s == pytest.approx(8.0)

    def test_slot_start_times(self):
        mac = TDMASchedule(num_nodes=4, slot_duration_s=1.0)
        assert mac.slot_start(0) == 0.0
        assert mac.slot_start(3) == 3.0
        assert mac.slot_start(1, frame_index=2) == pytest.approx(9.0)

    def test_no_collisions(self):
        assert TDMASchedule(8, 1.0).expected_transmissions_per_packet() == 1.0

    def test_wait_time(self):
        mac = TDMASchedule(num_nodes=4, slot_duration_s=1.0)
        assert mac.wait_time_s(2, ready_time_s=0.5) == pytest.approx(1.5)
        # with zero airtime, a packet ready inside its own slot transmits now
        # (the old residue check wrongly rolled it a whole frame)
        assert mac.wait_time_s(0, ready_time_s=0.5) == 0.0

    def test_wait_time_airtime_residue(self):
        """The transmission must fit in the remaining slot residue."""
        mac = TDMASchedule(num_nodes=4, slot_duration_s=1.0)
        # 0.5 s of slot left, 0.4 s airtime fits -> transmit immediately
        assert mac.wait_time_s(0, ready_time_s=0.5, airtime_s=0.4) == 0.0
        # residue exactly equals the airtime: still fits (closed interval end)
        assert mac.wait_time_s(0, ready_time_s=0.5, airtime_s=0.5) == 0.0
        # 0.6 s airtime overruns the slot -> roll to the next frame's slot
        assert mac.wait_time_s(0, ready_time_s=0.5, airtime_s=0.6) == pytest.approx(3.5)

    def test_wait_time_slot_boundaries_exact(self):
        mac = TDMASchedule(num_nodes=4, slot_duration_s=1.0)
        # ready exactly at the slot start: full slot available, zero wait
        assert mac.wait_time_s(1, ready_time_s=1.0, airtime_s=1.0) == 0.0
        # ready exactly at the slot end: no residue left, rolls a full frame
        assert mac.wait_time_s(1, ready_time_s=2.0) == pytest.approx(3.0)
        # ready before the owner's slot this frame: wait for the slot start
        assert mac.wait_time_s(3, ready_time_s=1.25, airtime_s=1.0) == pytest.approx(1.75)
        # frame boundary: node 0's next slot starts immediately
        assert mac.wait_time_s(0, ready_time_s=4.0) == 0.0

    def test_wait_time_airtime_validation(self):
        mac = TDMASchedule(num_nodes=4, slot_duration_s=1.0)
        with pytest.raises(ValueError, match="airtime_s"):
            mac.wait_time_s(0, ready_time_s=0.0, airtime_s=1.5)
        with pytest.raises(ValueError):
            mac.wait_time_s(0, ready_time_s=-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TDMASchedule(0, 1.0)
        with pytest.raises(ValueError):
            TDMASchedule(4, 1.0).slot_start(4)


class TestSlottedAloha:
    def test_success_probability(self):
        mac = SlottedAloha(offered_load=0.5)
        assert mac.success_probability == pytest.approx(math.exp(-0.5))

    def test_peak_throughput_at_load_one(self):
        assert SlottedAloha(1.0).throughput == pytest.approx(1.0 / math.e)
        assert SlottedAloha(0.2).throughput < SlottedAloha(1.0).throughput
        assert SlottedAloha(4.0).throughput < SlottedAloha(1.0).throughput

    def test_expected_transmissions_zero_load(self):
        assert SlottedAloha(0.0).expected_transmissions_per_packet() == 1.0

    def test_expected_transmissions_increase_with_load(self):
        low = SlottedAloha(0.1).expected_transmissions_per_packet()
        high = SlottedAloha(1.5).expected_transmissions_per_packet()
        assert high > low > 1.0

    def test_expected_transmissions_close_to_untruncated_for_small_load(self):
        mac = SlottedAloha(0.3, max_attempts=50)
        assert mac.expected_transmissions_per_packet() == pytest.approx(
            1.0 / mac.success_probability, rel=1e-3
        )

    def test_delivery_probability(self):
        mac = SlottedAloha(1.0, max_attempts=1)
        assert mac.delivery_probability() == pytest.approx(math.exp(-1.0))
        assert SlottedAloha(1.0, max_attempts=20).delivery_probability() > 0.99

    @given(load=st.floats(min_value=0.0, max_value=5.0))
    def test_expected_attempts_bounded_by_cap_property(self, load):
        mac = SlottedAloha(load, max_attempts=10)
        expected = mac.expected_transmissions_per_packet()
        assert 1.0 <= expected <= 10.0

    @pytest.mark.parametrize("load", [0.3, 1.0, 2.5])
    @pytest.mark.parametrize("max_attempts", [1, 3, 10])
    def test_expected_transmissions_closed_form(self, load, max_attempts):
        """The truncated sum equals the closed form (1 - q^n) / p: the
        expectation of min(Geometric(p), n)."""
        mac = SlottedAloha(load, max_attempts=max_attempts)
        p = mac.success_probability
        closed_form = (1.0 - (1.0 - p) ** max_attempts) / p
        assert mac.expected_transmissions_per_packet() == pytest.approx(
            closed_form, rel=1e-12
        )

    def test_expected_transmissions_monte_carlo(self):
        """A seeded per-packet attempt simulation agrees with the model."""
        import numpy as np

        mac = SlottedAloha(offered_load=1.2, max_attempts=4)
        rng = np.random.default_rng(1234)
        p = mac.success_probability
        draws = rng.random((200_000, mac.max_attempts))
        success = draws < p
        attempts = np.where(
            success.any(axis=1), success.argmax(axis=1) + 1, mac.max_attempts
        )
        assert attempts.mean() == pytest.approx(
            mac.expected_transmissions_per_packet(), rel=5e-3
        )
        assert success.any(axis=1).mean() == pytest.approx(
            mac.delivery_probability(), abs=5e-3
        )

    def test_expected_transmissions_max_attempts_one(self):
        """With a single attempt the expectation is exactly one transmission
        whatever the load — the packet is sent once and then dropped or not."""
        assert SlottedAloha(3.0, max_attempts=1).expected_transmissions_per_packet() == 1.0
        assert SlottedAloha(0.0, max_attempts=1).expected_transmissions_per_packet() == 1.0

    def test_expected_transmissions_zero_load_any_cap(self):
        """offered_load=0 means p=1: first attempt always succeeds."""
        for cap in (1, 5, 50):
            assert SlottedAloha(0.0, max_attempts=cap).expected_transmissions_per_packet() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlottedAloha(-0.1)
        with pytest.raises(ValueError):
            SlottedAloha(0.5, max_attempts=0)
