"""Unit tests for repro.dsp.matched_filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.matched_filter import (
    correlate_full,
    filter_bank_outputs,
    matched_filter,
    normalized_correlation,
)


class TestMatchedFilter:
    def test_matched_template_yields_energy(self):
        template = np.array([1.0, -1.0, 1.0, 1.0])
        received = template.astype(complex)
        assert matched_filter(received, template) == pytest.approx(4.0)

    def test_orthogonal_template_yields_zero(self):
        received = np.array([1.0, 1.0, 0.0, 0.0], dtype=complex)
        template = np.array([0.0, 0.0, 1.0, 1.0])
        assert matched_filter(received, template) == pytest.approx(0.0)

    def test_complex_gain_recovered(self):
        template = np.array([1.0, -1.0, 1.0, -1.0])
        gain = 0.5 - 0.25j
        assert matched_filter(gain * template, template) == pytest.approx(gain * 4.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            matched_filter(np.zeros(3, dtype=complex), np.zeros(4))


class TestFilterBank:
    def test_matches_individual_filters(self):
        rng = np.random.default_rng(0)
        templates = rng.choice([-1.0, 1.0], size=(5, 16))
        received = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        bank = filter_bank_outputs(received, templates)
        individual = [matched_filter(received, t) for t in templates]
        np.testing.assert_allclose(bank, individual)

    def test_shape(self):
        out = filter_bank_outputs(np.zeros(8, dtype=complex), np.ones((3, 8)))
        assert out.shape == (3,)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            filter_bank_outputs(np.zeros(8, dtype=complex), np.ones((3, 9)))


class TestCorrelateFull:
    def test_peak_at_correct_delay(self):
        template = np.array([1.0, -1.0, 1.0, 1.0, -1.0])
        delay = 7
        received = np.zeros(32, dtype=complex)
        received[delay : delay + 5] = template
        corr = correlate_full(received, template)
        # peak index of the correlation corresponds to end of the aligned template
        assert int(np.argmax(np.abs(corr))) == delay + len(template) - 1

    def test_fft_and_direct_paths_agree(self):
        rng = np.random.default_rng(1)
        template = rng.choice([-1.0, 1.0], size=10)
        short = rng.standard_normal(50) + 1j * rng.standard_normal(50)
        long = np.concatenate([short, np.zeros(300)])
        direct = correlate_full(short, template)          # short path (direct convolve)
        fft = correlate_full(long, template)[: len(direct)]  # long path (FFT)
        np.testing.assert_allclose(direct, fft, atol=1e-9)

    def test_output_length(self):
        corr = correlate_full(np.zeros(20, dtype=complex), np.ones(5))
        assert corr.shape == (24,)


class TestNormalizedCorrelation:
    def test_identical_vectors(self):
        x = np.array([1.0, 2.0, -1.0], dtype=complex)
        assert normalized_correlation(x, x) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert normalized_correlation(
            np.array([1.0, 0.0], dtype=complex), np.array([0.0, 1.0], dtype=complex)
        ) == pytest.approx(0.0)

    def test_scaling_invariance(self):
        x = np.array([1.0, 2.0, 3.0], dtype=complex)
        assert normalized_correlation(x, 5.0 * x) == pytest.approx(1.0)

    def test_zero_vector_returns_zero(self):
        assert normalized_correlation(np.zeros(3, dtype=complex), np.ones(3, dtype=complex)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_correlation(np.zeros(3, dtype=complex), np.zeros(4, dtype=complex))
