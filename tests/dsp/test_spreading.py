"""Unit tests for repro.dsp.spreading (the Figure 4 waveform structure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.msequence import m_sequence
from repro.dsp.spreading import (
    composite_waveform,
    composite_waveform_set,
    despread_chips,
    spread_symbols,
)
from repro.dsp.walsh import is_orthogonal_set, walsh_codes


class TestCompositeWaveform:
    def test_aquamodem_chip_count(self):
        walsh = walsh_codes(8)[3]
        pn = m_sequence(7)
        waveform = composite_waveform(walsh, pn)
        assert waveform.shape == (56,)

    def test_kronecker_structure(self):
        walsh = np.array([1, -1])
        pn = np.array([1, 1, -1])
        waveform = composite_waveform(walsh, pn)
        np.testing.assert_array_equal(waveform, [1, 1, -1, -1, -1, 1])

    def test_constant_envelope(self):
        waveform = composite_waveform(walsh_codes(8)[5], m_sequence(7))
        np.testing.assert_allclose(np.abs(waveform), 1.0)


class TestCompositeWaveformSet:
    def test_aquamodem_set_shape(self):
        waveforms = composite_waveform_set(8, 7)
        assert waveforms.shape == (8, 56)

    def test_set_remains_orthogonal(self):
        # spreading every symbol by the same m-sequence preserves orthogonality
        waveforms = composite_waveform_set(8, 7)
        assert is_orthogonal_set(waveforms)

    def test_each_waveform_energy(self):
        waveforms = composite_waveform_set(8, 7)
        np.testing.assert_allclose(np.sum(waveforms**2, axis=1), 56.0)

    def test_other_sizes(self):
        waveforms = composite_waveform_set(4, 3)
        assert waveforms.shape == (4, 12)
        assert is_orthogonal_set(waveforms)


class TestSpreadSymbols:
    def test_concatenation(self):
        waveforms = composite_waveform_set(4, 3)
        chips = spread_symbols(np.array([0, 2, 1]), waveforms)
        assert chips.shape == (36,)
        np.testing.assert_array_equal(chips[:12], waveforms[0])
        np.testing.assert_array_equal(chips[12:24], waveforms[2])

    def test_empty_input(self):
        waveforms = composite_waveform_set(4, 3)
        assert spread_symbols(np.array([], dtype=int), waveforms).shape == (0,)

    def test_out_of_range_symbol(self):
        waveforms = composite_waveform_set(4, 3)
        with pytest.raises(ValueError):
            spread_symbols(np.array([4]), waveforms)
        with pytest.raises(ValueError):
            spread_symbols(np.array([-1]), waveforms)


class TestDespreadChips:
    def test_recovers_symbols_noiseless(self):
        waveforms = composite_waveform_set(8, 7)
        symbols = np.array([0, 3, 7, 5, 1])
        chips = spread_symbols(symbols, waveforms)
        scores = despread_chips(chips.astype(complex), waveforms)
        np.testing.assert_array_equal(np.argmax(scores.real, axis=1), symbols)

    def test_score_matrix_shape(self):
        waveforms = composite_waveform_set(4, 3)
        chips = spread_symbols(np.array([0, 1]), waveforms)
        assert despread_chips(chips.astype(complex), waveforms).shape == (2, 4)

    def test_rejects_partial_symbol(self):
        waveforms = composite_waveform_set(4, 3)
        with pytest.raises(ValueError, match="multiple"):
            despread_chips(np.zeros(13, dtype=complex), waveforms)
