"""Unit tests for repro.dsp.detection (RAKE combining and symbol decisions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.detection import detect_symbols, rake_combine, symbol_decision
from repro.dsp.sampling import upsample_chips
from repro.dsp.spreading import composite_waveform_set


@pytest.fixture(scope="module")
def alphabet() -> np.ndarray:
    chips = composite_waveform_set(4, 3)
    return np.vstack([upsample_chips(row, 2) for row in chips]).astype(np.float64)


class TestRakeCombine:
    def test_single_path_identity(self):
        received = np.arange(10, dtype=complex)
        combined = rake_combine(received, np.array([0]), np.array([1.0 + 0j]), 6)
        np.testing.assert_allclose(combined, received[:6])

    def test_two_equal_paths_double_amplitude(self, alphabet):
        waveform = alphabet[1].astype(complex)
        window = np.zeros(40, dtype=complex)
        window[: len(waveform)] += waveform
        window[3 : 3 + len(waveform)] += waveform
        combined = rake_combine(
            window, np.array([0, 3]), np.array([1.0 + 0j, 1.0 + 0j]), len(waveform)
        )
        # combining aligns both copies coherently: correlation doubles (plus cross terms)
        score = float(np.real(alphabet[1] @ combined))
        single = float(np.real(alphabet[1] @ waveform))
        assert score > 1.5 * single

    def test_phase_correction(self, alphabet):
        waveform = alphabet[0].astype(complex)
        gain = np.exp(1j * 2.1) * 0.7
        window = np.concatenate([gain * waveform, np.zeros(10)])
        combined = rake_combine(window, np.array([0]), np.array([gain]), len(waveform))
        # conj(gain) * gain is real positive: the combined signal is phase-aligned
        score = np.real(alphabet[0] @ combined)
        assert score == pytest.approx(abs(gain) ** 2 * np.sum(alphabet[0] ** 2))

    def test_delay_gain_length_mismatch(self):
        with pytest.raises(ValueError):
            rake_combine(np.zeros(10, dtype=complex), np.array([0, 1]), np.array([1.0 + 0j]), 4)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            rake_combine(np.zeros(10, dtype=complex), np.array([-1]), np.array([1.0 + 0j]), 4)

    def test_window_overrun_rejected(self):
        with pytest.raises(ValueError):
            rake_combine(np.zeros(10, dtype=complex), np.array([8]), np.array([1.0 + 0j]), 4)


class TestSymbolDecision:
    def test_picks_transmitted_symbol(self, alphabet):
        index, scores = symbol_decision(alphabet[2].astype(complex), alphabet)
        assert index == 2
        assert scores.shape == (4,)

    def test_length_mismatch(self, alphabet):
        with pytest.raises(ValueError):
            symbol_decision(np.zeros(5, dtype=complex), alphabet)


class TestDetectSymbols:
    def test_noiseless_multi_symbol_detection(self, alphabet):
        symbol_len = alphabet.shape[1]
        window_len = 2 * symbol_len
        tx = [0, 3, 1, 2]
        windows = np.zeros((len(tx), window_len), dtype=complex)
        for i, s in enumerate(tx):
            windows[i, :symbol_len] = alphabet[s]
        decisions = detect_symbols(
            windows, alphabet, np.array([0]), np.array([1.0 + 0j])
        )
        np.testing.assert_array_equal(decisions, tx)

    def test_multipath_detection_with_rake(self, alphabet):
        symbol_len = alphabet.shape[1]
        window_len = 2 * symbol_len
        delays = np.array([0, 5])
        gains = np.array([1.0 + 0j, 0.6 * np.exp(1j * 0.8)])
        tx = [1, 2, 0]
        windows = np.zeros((len(tx), window_len), dtype=complex)
        for i, s in enumerate(tx):
            for d, g in zip(delays, gains):
                windows[i, d : d + symbol_len] += g * alphabet[s]
        decisions = detect_symbols(windows, alphabet, delays, gains)
        np.testing.assert_array_equal(decisions, tx)
