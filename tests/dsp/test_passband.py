"""Unit tests for the passband front-end model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.passband import PassbandFrontEnd, downconvert, upconvert
from repro.dsp.modulation.dsss import DSSSModulator


@pytest.fixture(scope="module")
def front_end() -> PassbandFrontEnd:
    return PassbandFrontEnd()


def _aligned_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Peak normalised cross-correlation magnitude (alignment-tolerant)."""
    n = min(len(a), len(b))
    a = a[:n]
    b = b[:n]
    corr = np.correlate(a, b, mode="full")
    return float(np.max(np.abs(corr)) / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-30))


class TestUpconvert:
    def test_output_is_real_and_longer(self, front_end):
        baseband = np.exp(1j * np.linspace(0, 4 * np.pi, 200))
        passband = front_end.upconvert(baseband)
        assert passband.dtype == np.float64
        assert passband.shape == (200 * front_end.interpolation_factor,)

    def test_spectrum_centred_on_carrier(self, front_end):
        rng = np.random.default_rng(0)
        baseband = (rng.standard_normal(512) + 1j * rng.standard_normal(512)) * 0.5
        passband = front_end.upconvert(baseband)
        spectrum = np.abs(np.fft.rfft(passband))
        freqs = np.fft.rfftfreq(passband.shape[0], d=1.0 / front_end.passband_rate_hz)
        peak_freq = freqs[int(np.argmax(spectrum))]
        assert abs(peak_freq - front_end.carrier_frequency_hz) < front_end.baseband_rate_hz

    def test_power_approximately_preserved(self, front_end):
        rng = np.random.default_rng(1)
        baseband = rng.standard_normal(2048) + 1j * rng.standard_normal(2048)
        passband = front_end.upconvert(baseband)
        baseband_power = np.mean(np.abs(baseband) ** 2)
        # passband power per *baseband-rate* sample: scale by interpolation factor
        passband_power = np.mean(passband**2)
        assert passband_power == pytest.approx(baseband_power, rel=0.15)

    def test_empty_input(self, front_end):
        assert front_end.upconvert(np.zeros(0, dtype=complex)).shape == (0,)


class TestDownconvert:
    def test_roundtrip_recovers_baseband(self, front_end):
        """Up- then down-conversion reproduces the baseband signal."""
        modulator = DSSSModulator()
        baseband = modulator.modulate(np.array([0, 3, 5, 6]))
        passband = front_end.upconvert(baseband)
        recovered = front_end.downconvert(passband)
        assert recovered.shape[0] == baseband.shape[0]
        assert _aligned_correlation(recovered, baseband) > 0.95

    def test_roundtrip_preserves_symbol_decisions(self, front_end):
        modulator = DSSSModulator()
        symbols = np.array([1, 4, 7, 2, 0, 6])
        baseband = modulator.modulate(symbols)
        recovered = front_end.downconvert(front_end.upconvert(baseband))
        result = modulator.demodulate(recovered)
        np.testing.assert_array_equal(result.symbols, symbols)

    def test_rejects_wrong_rate_configuration(self):
        with pytest.raises(ValueError, match="interpolation_factor"):
            PassbandFrontEnd(carrier_frequency_hz=24_000.0, baseband_rate_hz=10_000.0,
                             interpolation_factor=2)

    def test_functional_api_matches_class(self, front_end):
        baseband = np.exp(1j * np.linspace(0, 2 * np.pi, 64))
        via_class = front_end.upconvert(baseband)
        via_function = upconvert(baseband)
        np.testing.assert_allclose(via_class, via_function)
        np.testing.assert_allclose(
            front_end.downconvert(via_class), downconvert(via_function)
        )

    def test_empty_input(self, front_end):
        assert front_end.downconvert(np.zeros(0)).shape == (0,)
