"""Unit tests for repro.dsp.msequence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.msequence import (
    PRIMITIVE_POLYNOMIALS,
    LinearFeedbackShiftRegister,
    is_balanced,
    m_sequence,
    periodic_autocorrelation,
)


class TestLFSR:
    def test_period_is_maximal_for_length_3(self):
        lfsr = LinearFeedbackShiftRegister(PRIMITIVE_POLYNOMIALS[3])
        bits = lfsr.run(14)
        # maximal sequence of period 7 repeats exactly after 7 steps
        np.testing.assert_array_equal(bits[:7], bits[7:14])
        assert lfsr.period == 7

    def test_all_nonzero_states_visited(self):
        lfsr = LinearFeedbackShiftRegister(PRIMITIVE_POLYNOMIALS[4])
        states = set()
        for _ in range(15):
            states.add(tuple(lfsr.state))
            lfsr.step()
        assert len(states) == 15  # every non-zero 4-bit state

    def test_all_zero_state_rejected(self):
        with pytest.raises(ValueError, match="all-zero"):
            LinearFeedbackShiftRegister((3, 2), state=[0, 0, 0])

    def test_state_length_must_match(self):
        with pytest.raises(ValueError):
            LinearFeedbackShiftRegister((3, 2), state=[1, 0])

    def test_state_bits_validated(self):
        with pytest.raises(ValueError):
            LinearFeedbackShiftRegister((3, 2), state=[1, 0, 2])

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            LinearFeedbackShiftRegister(())


class TestMSequence:
    def test_aquamodem_length_7(self):
        seq = m_sequence(7)
        assert seq.shape == (7,)
        assert set(np.unique(seq)) == {-1, 1}

    @pytest.mark.parametrize("length", [7, 15, 31, 63])
    def test_balance_property(self, length):
        assert is_balanced(m_sequence(length))

    @pytest.mark.parametrize("length", [7, 15, 31])
    def test_autocorrelation_is_two_valued(self, length):
        seq = m_sequence(length)
        acf = periodic_autocorrelation(seq)
        assert acf[0] == pytest.approx(length)
        np.testing.assert_allclose(acf[1:], -1.0, atol=1e-9)

    def test_binary_output_option(self):
        bits = m_sequence(7, bipolar=False)
        assert set(np.unique(bits)) <= {0, 1}

    def test_invalid_length_without_register_hint(self):
        with pytest.raises(ValueError, match="2\\*\\*m - 1"):
            m_sequence(10)

    def test_explicit_register_length_truncates(self):
        seq = m_sequence(10, register_length=4)
        assert seq.shape == (10,)

    def test_unknown_register_length(self):
        with pytest.raises(ValueError):
            m_sequence(10, register_length=20)


class TestPeriodicAutocorrelation:
    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            periodic_autocorrelation(np.ones((2, 2)))

    def test_zero_lag_equals_energy(self):
        seq = np.array([1.0, -1.0, 1.0, 1.0])
        acf = periodic_autocorrelation(seq)
        assert acf[0] == pytest.approx(4.0)
