"""Unit tests for repro.dsp.sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.sampling import (
    raised_cosine_taps,
    rectangular_pulse_shape,
    shape_chips,
    upsample_chips,
)


class TestUpsampleChips:
    def test_aquamodem_two_samples_per_chip(self):
        chips = np.array([1.0, -1.0, 1.0])
        samples = upsample_chips(chips, 2)
        np.testing.assert_array_equal(samples, [1, 1, -1, -1, 1, 1])

    def test_factor_one_is_identity(self):
        chips = np.array([1.0, -1.0])
        np.testing.assert_array_equal(upsample_chips(chips, 1), chips)

    def test_56_chips_become_112_samples(self):
        samples = upsample_chips(np.ones(56), 2)
        assert samples.shape == (112,)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            upsample_chips(np.ones(4), 0)


class TestRectangularPulse:
    def test_unit_energy(self):
        pulse = rectangular_pulse_shape(4)
        assert np.sum(pulse**2) == pytest.approx(1.0)

    def test_length(self):
        assert rectangular_pulse_shape(3).shape == (3,)


class TestRaisedCosine:
    def test_peak_normalised(self):
        taps = raised_cosine_taps(4, span_chips=6, rolloff=0.25)
        assert np.max(np.abs(taps)) == pytest.approx(1.0)

    def test_zero_crossings_at_chip_intervals(self):
        sps = 8
        taps = raised_cosine_taps(sps, span_chips=6, rolloff=0.0)
        centre = len(taps) // 2
        # Nyquist criterion: zero at every non-zero multiple of the chip period
        for k in (1, 2, 3):
            assert abs(taps[centre + k * sps]) < 1e-9

    def test_rolloff_validated(self):
        with pytest.raises(ValueError):
            raised_cosine_taps(4, rolloff=1.5)

    def test_length_matches_span(self):
        taps = raised_cosine_taps(2, span_chips=4)
        assert len(taps) == 2 * 4 + 1


class TestShapeChips:
    def test_default_is_rectangular(self):
        chips = np.array([1.0, -1.0])
        np.testing.assert_array_equal(shape_chips(chips, 3), upsample_chips(chips, 3))

    def test_with_pulse_preserves_length(self):
        chips = np.ones(10)
        pulse = raised_cosine_taps(4)
        shaped = shape_chips(chips, 4, pulse)
        assert shaped.shape == (40,)
