"""Unit tests for repro.dsp.signal_matrix (the S/A/a construction of Section III)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.signal_matrix import (
    SignalMatrices,
    build_signal_matrices,
    delayed_signature_matrix,
)


class TestDelayedSignatureMatrix:
    def test_column_k_is_waveform_delayed_by_k(self):
        waveform = np.array([1.0, -1.0, 1.0])
        S = delayed_signature_matrix(waveform, window_length=6, num_delays=4)
        assert S.shape == (6, 4)
        np.testing.assert_array_equal(S[:3, 0], waveform)
        np.testing.assert_array_equal(S[2:5, 2], waveform)
        assert S[0, 2] == 0.0 and S[5, 2] == 0.0

    def test_rejects_window_too_short(self):
        with pytest.raises(ValueError, match="window too short"):
            delayed_signature_matrix(np.ones(3), window_length=4, num_delays=3)

    def test_columns_have_equal_energy(self):
        waveform = np.array([1.0, -1.0, 1.0, 1.0])
        S = delayed_signature_matrix(waveform, 10, 7)
        np.testing.assert_allclose(np.sum(S**2, axis=0), 4.0)


class TestBuildSignalMatrices:
    def test_aquamodem_dimensions(self, aquamodem_matrices):
        assert aquamodem_matrices.S.shape == (224, 112)
        assert aquamodem_matrices.A.shape == (112, 112)
        assert aquamodem_matrices.a.shape == (112,)
        assert aquamodem_matrices.num_delays == 112
        assert aquamodem_matrices.window_length == 224

    def test_A_is_gram_matrix(self, small_matrices):
        np.testing.assert_allclose(
            small_matrices.A, small_matrices.S.T @ small_matrices.S
        )

    def test_A_is_symmetric_positive_semidefinite(self, aquamodem_matrices):
        A = aquamodem_matrices.A
        np.testing.assert_allclose(A, A.T)
        eigenvalues = np.linalg.eigvalsh(A)
        assert eigenvalues.min() >= -1e-9

    def test_a_is_reciprocal_diagonal(self, aquamodem_matrices):
        np.testing.assert_allclose(
            aquamodem_matrices.a, 1.0 / np.diag(aquamodem_matrices.A)
        )

    def test_aquamodem_diagonal_is_waveform_energy(self, aquamodem_matrices):
        # ±1 chips upsampled to 112 samples -> every column has energy 112
        np.testing.assert_allclose(np.diag(aquamodem_matrices.A), 112.0)
        np.testing.assert_allclose(aquamodem_matrices.a, 1.0 / 112.0)

    def test_defaults_double_window(self):
        waveform = np.ones(5)
        matrices = build_signal_matrices(waveform)
        assert matrices.window_length == 10
        assert matrices.num_delays == 5

    def test_custom_geometry(self):
        matrices = build_signal_matrices(np.ones(4), window_length=12, num_delays=6)
        assert matrices.S.shape == (12, 6)

    def test_zero_energy_waveform_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            build_signal_matrices(np.zeros(4))

    def test_shape_validation_in_dataclass(self):
        S = np.zeros((6, 3))
        with pytest.raises(ValueError):
            SignalMatrices(S=S, A=np.zeros((2, 2)), a=np.zeros(3), waveform=np.ones(3))
        with pytest.raises(ValueError):
            SignalMatrices(S=S, A=np.zeros((3, 3)), a=np.zeros(2), waveform=np.ones(3))


class TestSynthesize:
    def test_single_path_is_shifted_waveform(self, small_matrices):
        f = np.zeros(small_matrices.num_delays, dtype=complex)
        f[3] = 2.0 - 1.0j
        received = small_matrices.synthesize(f)
        expected = (2.0 - 1.0j) * small_matrices.S[:, 3]
        np.testing.assert_allclose(received, expected)

    def test_superposition(self, small_matrices):
        f1 = np.zeros(small_matrices.num_delays, dtype=complex)
        f2 = np.zeros(small_matrices.num_delays, dtype=complex)
        f1[0] = 1.0
        f2[5] = -0.5j
        combined = small_matrices.synthesize(f1 + f2)
        np.testing.assert_allclose(
            combined, small_matrices.synthesize(f1) + small_matrices.synthesize(f2)
        )

    def test_length_validation(self, small_matrices):
        with pytest.raises(ValueError):
            small_matrices.synthesize(np.zeros(small_matrices.num_delays + 1, dtype=complex))
