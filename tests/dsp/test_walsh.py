"""Unit tests for repro.dsp.walsh."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsp.walsh import is_orthogonal_set, sequency, walsh_codes, walsh_matrix


class TestWalshMatrix:
    @pytest.mark.parametrize("order", [2, 4, 8, 16])
    def test_rows_are_orthogonal(self, order):
        matrix = walsh_matrix(order)
        assert is_orthogonal_set(matrix)

    @pytest.mark.parametrize("order", [2, 4, 8, 16])
    def test_entries_are_plus_minus_one(self, order):
        matrix = walsh_matrix(order)
        assert set(np.unique(matrix)) == {-1, 1}

    def test_gram_matrix_is_scaled_identity(self):
        matrix = walsh_matrix(8).astype(float)
        np.testing.assert_allclose(matrix @ matrix.T, 8 * np.eye(8))

    def test_sequency_ordering_is_monotone(self):
        matrix = walsh_matrix(8, ordering="sequency")
        sequencies = [sequency(row) for row in matrix]
        assert sequencies == sorted(sequencies)
        assert sequencies == list(range(8))

    def test_hadamard_ordering_first_row_all_ones(self):
        matrix = walsh_matrix(8, ordering="hadamard")
        np.testing.assert_array_equal(matrix[0], np.ones(8))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            walsh_matrix(6)

    def test_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            walsh_matrix(8, ordering="natural")

    @given(st.sampled_from([2, 4, 8, 16, 32]))
    def test_orderings_contain_same_row_set_property(self, order):
        seq = {tuple(row) for row in walsh_matrix(order, "sequency")}
        had = {tuple(row) for row in walsh_matrix(order, "hadamard")}
        assert seq == had


class TestSequency:
    def test_constant_row_has_zero_sequency(self):
        assert sequency(np.ones(8)) == 0

    def test_alternating_row_has_maximum_sequency(self):
        row = np.array([1, -1, 1, -1, 1, -1, 1, -1])
        assert sequency(row) == 7

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            sequency(np.ones((2, 2)))


class TestWalshCodes:
    def test_aquamodem_alphabet(self):
        codes = walsh_codes(8)
        assert codes.shape == (8, 8)
        assert is_orthogonal_set(codes)


class TestIsOrthogonalSet:
    def test_detects_non_orthogonal(self):
        codes = np.array([[1.0, 1.0], [1.0, 0.5]])
        assert not is_orthogonal_set(codes)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            is_orthogonal_set(np.ones(4))
