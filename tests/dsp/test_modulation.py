"""Unit tests for repro.dsp.modulation (DS-SS and FSK modulators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp.modulation.dsss import DSSSModulator
from repro.dsp.modulation.fsk import FSKModulator


class TestDSSSModulator:
    def test_aquamodem_geometry(self):
        mod = DSSSModulator(num_symbols=8, spreading_length=7, samples_per_chip=2)
        assert mod.alphabet_size == 8
        assert mod.chips_per_symbol == 56
        assert mod.symbol_samples == 112
        assert mod.guard_samples == 112
        assert mod.samples_per_symbol == 224
        assert mod.bits_per_symbol() == 3

    def test_modulate_length_and_guard_silence(self):
        mod = DSSSModulator()
        samples = mod.modulate(np.array([0, 5]))
        assert samples.shape == (2 * 224,)
        # guard interval after each symbol is silent
        np.testing.assert_allclose(samples[112:224], 0.0)
        np.testing.assert_allclose(samples[336:448], 0.0)

    def test_roundtrip_noiseless(self):
        mod = DSSSModulator()
        symbols = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        result = mod.demodulate(mod.modulate(symbols))
        np.testing.assert_array_equal(result.symbols, symbols)

    def test_roundtrip_with_known_multipath(self):
        mod = DSSSModulator()
        symbols = np.array([3, 6, 1])
        tx = mod.modulate(symbols)
        delays = np.array([0, 9])
        gains = np.array([1.0 + 0j, 0.5j])
        rx = np.zeros_like(tx)
        for d, g in zip(delays, gains):
            rx[d:] += g * tx[: len(tx) - d]
        result = mod.demodulate(rx, path_delays=delays, path_gains=gains)
        np.testing.assert_array_equal(result.symbols, symbols)

    def test_symbol_out_of_range(self):
        mod = DSSSModulator()
        with pytest.raises(ValueError):
            mod.modulate(np.array([8]))

    def test_receive_windows_shape(self):
        mod = DSSSModulator()
        windows = mod.receive_windows(np.zeros(3 * 224 + 17, dtype=complex))
        assert windows.shape == (3, 224)

    def test_guard_factor_zero(self):
        mod = DSSSModulator(guard_factor=0.0)
        assert mod.samples_per_symbol == mod.symbol_samples

    def test_random_symbols_helper(self):
        mod = DSSSModulator()
        rng = np.random.default_rng(0)
        symbols = mod.random_symbols(100, rng)
        assert symbols.min() >= 0 and symbols.max() < 8


class TestFSKModulator:
    def test_geometry(self):
        mod = FSKModulator(num_tones=8, samples_per_symbol=112, guard_samples=112)
        assert mod.alphabet_size == 8
        assert mod.samples_per_symbol == 224
        assert mod.tones.shape == (8, 112)

    def test_tones_are_orthogonal(self):
        mod = FSKModulator(num_tones=8, samples_per_symbol=112)
        gram = mod.tones @ np.conj(mod.tones.T)
        off_diag = gram - np.diag(np.diag(gram))
        assert np.max(np.abs(off_diag)) < 1e-9

    def test_roundtrip_noiseless(self):
        mod = FSKModulator(num_tones=8, samples_per_symbol=112, guard_samples=112)
        symbols = np.array([0, 7, 3, 5, 1])
        result = mod.demodulate(mod.modulate(symbols))
        np.testing.assert_array_equal(result.symbols, symbols)

    def test_noncoherent_detection_is_phase_invariant(self):
        mod = FSKModulator(num_tones=4, samples_per_symbol=64, guard_samples=0)
        symbols = np.array([2, 0, 3])
        tx = mod.modulate(symbols) * np.exp(1j * 1.234)
        result = mod.demodulate(tx)
        np.testing.assert_array_equal(result.symbols, symbols)

    def test_symbol_out_of_range(self):
        mod = FSKModulator(num_tones=4, samples_per_symbol=64)
        with pytest.raises(ValueError):
            mod.modulate(np.array([4]))

    def test_alphabet_cannot_exceed_samples(self):
        with pytest.raises(ValueError):
            FSKModulator(num_tones=16, samples_per_symbol=8)
