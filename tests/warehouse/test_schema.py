"""Schema creation, reopening, and the version-mismatch contract."""

from __future__ import annotations

import pytest

from repro.warehouse import SCHEMA_VERSION, SchemaVersionError, Warehouse
from repro.warehouse.schema import connect


class TestSchemaCreation:
    def test_fresh_file_gets_all_tables_and_the_version_row(self, tmp_path):
        conn = connect(tmp_path / "wh.sqlite")
        try:
            tables = {
                row["name"]
                for row in conn.execute("SELECT name FROM sqlite_master WHERE type='table'")
            }
            assert {"warehouse_meta", "runs", "trials", "params", "metrics"} <= tables
            version = conn.execute(
                "SELECT value FROM warehouse_meta WHERE key='schema_version'"
            ).fetchone()["value"]
            assert version == str(SCHEMA_VERSION)
        finally:
            conn.close()

    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "wh.sqlite"
        connect(path).close()
        assert path.is_file()

    def test_reopening_an_existing_file_is_a_no_op(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        connect(path).close()
        conn = connect(path)  # must not raise or recreate
        try:
            count = conn.execute("SELECT COUNT(*) AS n FROM warehouse_meta").fetchone()["n"]
            assert count == 1
        finally:
            conn.close()


class TestSchemaVersionMismatch:
    def _tamper_version(self, path, value):
        conn = connect(path)
        conn.execute("UPDATE warehouse_meta SET value = ? WHERE key='schema_version'", (value,))
        conn.close()

    def test_mismatched_version_raises_the_documented_error(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        self._tamper_version(path, "999")
        with pytest.raises(SchemaVersionError, match="re-ingest into a fresh warehouse"):
            connect(path)
        try:
            connect(path)
        except SchemaVersionError as error:
            assert error.found == "999"
            assert error.expected == SCHEMA_VERSION

    def test_missing_version_row_also_raises(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        conn = connect(path)
        conn.execute("DELETE FROM warehouse_meta WHERE key='schema_version'")
        conn.close()
        with pytest.raises(SchemaVersionError, match="<missing>"):
            connect(path)

    def test_the_warehouse_facade_surfaces_the_error_on_every_operation(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        self._tamper_version(path, "2")
        warehouse = Warehouse(path)
        with pytest.raises(SchemaVersionError):
            warehouse.runs()
        with pytest.raises(SchemaVersionError):
            warehouse.ingest(tmp_path)
