"""Query filters, run resolution, and the comparison/regression report."""

from __future__ import annotations

import pytest

from repro.warehouse import Warehouse, compare_runs, parse_filter, render_comparison
from repro.warehouse.compare import MetricDiff
from repro.warehouse.schema import connect
from tests.warehouse.helpers import make_records, make_ser_run, make_store_dir


@pytest.fixture
def two_ser_runs(tmp_path):
    """A warehouse holding a baseline SER curve and a degraded one."""
    warehouse = Warehouse(tmp_path / "wh.sqlite")
    make_ser_run(tmp_path / "baseline", [0.30, 0.10, 0.02])
    make_ser_run(tmp_path / "degraded", [0.30, 0.10, 0.05])  # worse at -3 dB
    warehouse.ingest(tmp_path / "baseline")
    warehouse.ingest(tmp_path / "degraded")
    return warehouse


class TestParseFilter:
    @pytest.mark.parametrize(
        "expression, name, op, value",
        [
            ("snr_db>=-3", "snr_db", ">=", -3),
            ("snr_db<0", "snr_db", "<", 0),
            ("scheme=DSSS", "scheme", "=", "DSSS"),
            ("scheme!=FSK", "scheme", "!=", "FSK"),
            ("word_length==8", "word_length", "==", 8),
            ("duty == 0.5", "duty", "==", 0.5),
        ],
    )
    def test_expressions(self, expression, name, op, value):
        predicate = parse_filter(expression)
        assert (predicate.name, predicate.op, predicate.value) == (name, op, value)

    def test_malformed_expression_rejected(self):
        with pytest.raises(ValueError, match="NAME<op>VALUE"):
            parse_filter("snr_db")
        with pytest.raises(ValueError, match="NAME<op>VALUE"):
            parse_filter("=3")


class TestQueries:
    def test_scenario_and_where_filters_select_the_right_runs(self, two_ser_runs):
        runs = two_ser_runs.runs(scenario="modem-ser-vs-snr")
        assert len(runs) == 2
        assert two_ser_runs.runs(scenario="no-such-scenario") == []
        # a run matches when at least one trial satisfies every predicate
        assert len(two_ser_runs.runs(where=[parse_filter("snr_db>=-3")])) == 2
        assert two_ser_runs.runs(where=[parse_filter("snr_db>100")]) == []

    def test_trial_filters_combine_and_limit(self, two_ser_runs):
        trials = two_ser_runs.trials(
            where=[parse_filter("scheme=DSSS"), parse_filter("snr_db>=-6")]
        )
        assert len(trials) == 4  # two runs x two qualifying SNR points
        assert all(trial.record["snr_db"] >= -6 for trial in trials)
        assert len(two_ser_runs.trials(limit=3)) == 3

    def test_resolve_latest_prev_and_failure_modes(self, two_ser_runs):
        latest = two_ser_runs.resolve("latest", scenario="modem-ser-vs-snr")
        prev = two_ser_runs.resolve("prev", scenario="modem-ser-vs-snr")
        assert latest.ingested_at >= prev.ingested_at
        assert latest.run_id != prev.run_id
        assert two_ser_runs.resolve(str(prev.run_id)).run_id == prev.run_id
        with pytest.raises(LookupError, match="no run with id 999"):
            two_ser_runs.resolve(999)
        with pytest.raises(LookupError, match="neither an id nor"):
            two_ser_runs.resolve("newest")
        with pytest.raises(LookupError, match="holds 0 matching"):
            two_ser_runs.resolve("latest", scenario="no-such-scenario")


class TestComparison:
    def test_regression_is_flagged_on_the_degraded_point(self, two_ser_runs):
        report = two_ser_runs.compare("prev", "latest", by="snr_db",
                                      scenario="modem-ser-vs-snr")
        flagged = {
            (diff.metric, diff.by_value): diff.classify(
                report.threshold, report.higher_is_better
            )
            for diff in report.diffs
        }
        assert flagged[("ser", -3)] == "regression"  # 0.02 -> 0.05
        assert flagged[("ser", -9)] == ""
        assert len(report.regressions) == 1

    def test_higher_is_better_flips_polarity(self, two_ser_runs):
        report = two_ser_runs.compare(
            "prev", "latest", by="snr_db", higher_is_better=True,
            scenario="modem-ser-vs-snr",
        )
        assert report.regressions == []
        improvements = [
            diff for diff in report.diffs
            if diff.classify(report.threshold, True) == "improvement"
        ]
        assert len(improvements) == 1

    def test_groups_present_in_one_run_only_are_kept(self, tmp_path):
        warehouse = Warehouse(tmp_path / "wh.sqlite")
        make_store_dir(
            tmp_path / "a",
            make_records("demo", params=[{"x": 1}], metrics=[{"y": 1.0}]),
        )
        make_store_dir(
            tmp_path / "b",
            make_records("demo", params=[{"x": 2}], metrics=[{"y": 2.0}]),
        )
        warehouse.ingest(tmp_path / "a", tmp_path / "b")
        report = warehouse.compare("prev", "latest", by="x")
        classes = {
            diff.by_value: diff.classify(report.threshold, False)
            for diff in report.diffs
        }
        assert classes == {1: "only-a", 2: "only-b"}

    def test_nan_trial_values_are_skipped_not_averaged(self, tmp_path):
        """A NaN metric (e.g. the delivery ratio of a zero-packet trial) must
        not poison the group mean: the remaining trials define it."""
        warehouse = Warehouse(tmp_path / "wh.sqlite")
        make_store_dir(
            tmp_path / "a",
            make_records(
                "demo",
                params=[{"x": 1}, {"x": 1}],
                metrics=[{"y": 0.4}, {"y": float("nan")}],
            ),
        )
        make_store_dir(
            tmp_path / "b",
            make_records(
                "demo",
                params=[{"x": 1}, {"x": 1}],
                metrics=[{"y": float("nan")}, {"y": float("nan")}],
            ),
        )
        warehouse.ingest(tmp_path / "a", tmp_path / "b")
        report = warehouse.compare("prev", "latest", metrics=["y"], by="x")
        (diff,) = report.diffs
        assert diff.mean_a == pytest.approx(0.4)
        assert diff.count_a == 1  # the NaN trial does not even count
        assert diff.mean_b is None  # all-NaN group: no defined mean at all
        assert diff.classify(report.threshold, False) == "only-a"

    def test_zero_baseline_reads_as_infinite_change_but_json_safe(self):
        diff = MetricDiff(metric="ser", by=None, by_value=None,
                          mean_a=0.0, mean_b=0.5, count_a=1, count_b=1)
        assert diff.relative_change == float("inf")
        assert diff.classify(0.1, higher_is_better=False) == "regression"
        both_zero = MetricDiff(metric="ser", by=None, by_value=None,
                               mean_a=0.0, mean_b=0.0, count_a=1, count_b=1)
        assert both_zero.relative_change == 0.0

    def test_report_round_trips_to_dict_and_renders(self, two_ser_runs, tmp_path):
        report = two_ser_runs.compare("prev", "latest", by="snr_db",
                                      scenario="modem-ser-vs-snr")
        payload = report.to_dict()
        assert payload["num_regressions"] == 1
        assert all("classification" in cell for cell in payload["diffs"])
        text = render_comparison(report)
        assert "regression" in text
        assert "1 regression(s) beyond 10%" in text

    def test_default_metric_set_is_the_shared_numeric_metrics(self, two_ser_runs):
        runs = two_ser_runs.runs(scenario="modem-ser-vs-snr")
        conn = connect(two_ser_runs.path)
        try:
            report = compare_runs(conn, runs[0], runs[1])
        finally:
            conn.close()
        assert {diff.metric for diff in report.diffs} == {"ser"}
