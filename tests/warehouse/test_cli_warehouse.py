"""CLI acceptance tests for ``repro ingest`` / ``repro query`` / ``repro compare``.

Pins the PR's acceptance criterion: over a freshly ingested two-run
warehouse, ``repro query --scenario modem-ser-vs-snr`` returns both runs and
``repro compare`` emits a metric-diff report with regression highlighting.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from tests.warehouse.helpers import make_ser_run


@pytest.fixture
def two_run_db(tmp_path):
    """Ingest two synthetic modem-ser-vs-snr runs; returns the --db path."""
    db = str(tmp_path / "wh.sqlite")
    make_ser_run(tmp_path / "baseline", [0.30, 0.10, 0.02])
    make_ser_run(tmp_path / "candidate", [0.30, 0.10, 0.05])
    assert main(["ingest", str(tmp_path / "baseline"), str(tmp_path / "candidate"),
                 "--db", db]) == 0
    return db


class TestIngestCommand:
    def test_reports_counts_and_is_idempotent(self, tmp_path, capsys):
        db = str(tmp_path / "wh.sqlite")
        make_ser_run(tmp_path / "run", [0.3, 0.1, 0.02])
        assert main(["ingest", str(tmp_path / "run"), "--db", db]) == 0
        out = capsys.readouterr().out
        assert "runs_added: 1" in out and "trials_added: 3" in out
        assert main(["ingest", str(tmp_path / "run"), "--db", db]) == 0
        out = capsys.readouterr().out
        assert "runs_unchanged: 1" in out and "trials_added: 0" in out

    def test_missing_path_is_a_clean_cli_error(self, tmp_path):
        with pytest.raises(SystemExit, match="nothing to ingest"):
            main(["ingest", str(tmp_path / "nope"), "--db", str(tmp_path / "wh.sqlite")])


class TestQueryCommand:
    def test_scenario_query_returns_both_runs(self, two_run_db, capsys):
        assert main(["query", "--db", two_run_db, "--scenario", "modem-ser-vs-snr"]) == 0
        out = capsys.readouterr().out
        assert "2 warehouse run(s)" in out
        assert "baseline" in out and "candidate" in out

    def test_json_output_is_machine_readable(self, two_run_db, capsys):
        assert main(["query", "--db", two_run_db, "--format", "json"]) == 0
        runs = json.loads(capsys.readouterr().out)
        assert len(runs) == 2
        assert {run["scenario"] for run in runs} == {"modem-ser-vs-snr"}
        assert all(run["num_trials"] == 3 for run in runs)

    def test_trials_mode_honours_where_filters(self, two_run_db, capsys):
        assert main(["query", "--db", two_run_db, "--trials",
                     "--where", "snr_db>=-6", "--where", "scheme=DSSS",
                     "--format", "json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 4  # 2 runs x 2 qualifying SNR points
        assert all(record["snr_db"] >= -6 for record in records)

    def test_csv_output_has_a_header_row(self, two_run_db, capsys):
        assert main(["query", "--db", two_run_db, "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("run,scenario,")
        assert len(lines) == 3

    def test_bad_where_expression_is_a_clean_cli_error(self, two_run_db):
        with pytest.raises(SystemExit, match="cannot parse filter"):
            main(["query", "--db", two_run_db, "--where", "snr_db"])

    def test_bad_since_value_is_a_clean_cli_error(self, two_run_db):
        with pytest.raises(SystemExit, match="--since expects an ISO"):
            main(["query", "--db", two_run_db, "--since", "yesterday"])


class TestCompareCommand:
    def test_emits_a_metric_diff_report_with_regression_flag(self, two_run_db, capsys):
        assert main(["compare", "1", "2", "--db", two_run_db, "--by", "snr_db"]) == 0
        out = capsys.readouterr().out
        assert "Run A mean" in out and "Run B mean" in out
        assert "regression" in out
        assert "1 regression(s) beyond 10%" in out

    def test_latest_prev_references_scoped_by_scenario(self, two_run_db, capsys):
        assert main(["compare", "prev", "latest", "--db", two_run_db,
                     "--scenario", "modem-ser-vs-snr", "--metric", "ser"]) == 0
        assert "ser" in capsys.readouterr().out

    def test_fail_on_regression_exits_nonzero(self, two_run_db):
        with pytest.raises(SystemExit, match="1 metric regression"):
            main(["compare", "1", "2", "--db", two_run_db, "--by", "snr_db",
                  "--fail-on-regression"])

    def test_json_report_carries_classifications(self, two_run_db, capsys):
        assert main(["compare", "1", "2", "--db", two_run_db, "--by", "snr_db",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_regressions"] == 1
        classes = {cell["classification"] for cell in payload["diffs"]}
        assert "regression" in classes

    def test_unknown_run_reference_is_a_clean_cli_error(self, two_run_db):
        with pytest.raises(SystemExit, match="no run with id 99"):
            main(["compare", "99", "1", "--db", two_run_db])
