"""Ingestion: discovery, idempotency, incremental caches, quarantine skips."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cache import ResultCache
from repro.warehouse import Warehouse, discover
from tests.warehouse.helpers import cache_put, make_records, make_ser_run, make_store_dir


@pytest.fixture
def warehouse(tmp_path):
    return Warehouse(tmp_path / "wh.sqlite")


def _platform_records():
    return make_records(
        "platform-energy",
        params=[{"platform": name} for name in ("a", "b", "c")],
        metrics=[{"energy_uj": value} for value in (10.0, 20.0, 30.0)],
    )


class TestDiscovery:
    def test_store_service_and_cache_dirs_are_classified(self, tmp_path):
        make_store_dir(tmp_path / "direct", _platform_records())
        make_store_dir(tmp_path / "data" / "jobs" / "job-1", _platform_records())
        cache = ResultCache(tmp_path / "cache")
        cache_put(cache, _platform_records()[0])
        found = {(kind, path.name) for kind, path in discover(tmp_path)}
        assert ("store", "direct") in found
        assert ("service", "job-1") in found
        assert ("cache", "platform-energy") in found

    def test_a_results_jsonl_file_is_accepted_directly(self, tmp_path):
        directory = make_store_dir(tmp_path / "run", _platform_records())
        found = list(discover(directory / "results.jsonl"))
        assert found == [("store", directory)]

    def test_nothing_to_ingest_is_an_error(self, tmp_path, warehouse):
        with pytest.raises(FileNotFoundError, match="nothing to ingest"):
            warehouse.ingest(tmp_path / "does-not-exist")


class TestStoreIngestion:
    def test_one_run_with_params_and_metrics_split_by_the_spec(self, tmp_path, warehouse):
        spec = {"scenario": "platform-energy", "grid": {"platform": ["a", "b", "c"]},
                "zipped": {}, "base": {}}
        make_store_dir(tmp_path / "run", _platform_records(), spec=spec)
        report = warehouse.ingest(tmp_path / "run")
        assert report.runs_added == 1 and report.trials_added == 3
        (run,) = warehouse.runs()
        assert run.scenario == "platform-energy"
        assert run.source == "store"
        assert run.num_trials == 3
        assert run.spec == spec
        assert warehouse.metric_names(run.run_id) == ["energy_uj"]

    def test_reingest_is_idempotent_zero_new_rows(self, tmp_path, warehouse):
        make_store_dir(tmp_path / "run", _platform_records())
        warehouse.ingest(tmp_path / "run")
        before = warehouse.counts()
        report = warehouse.ingest(tmp_path / "run")
        assert report.runs_unchanged == 1
        assert report.runs_added == 0 and report.trials_added == 0
        assert warehouse.counts() == before

    def test_changed_store_dir_is_replaced_under_the_same_run_id(self, tmp_path, warehouse):
        directory = make_store_dir(tmp_path / "run", _platform_records())
        warehouse.ingest(directory)
        (original,) = warehouse.runs()

        changed = make_records(
            "platform-energy",
            params=[{"platform": name} for name in ("a", "b")],
            metrics=[{"energy_uj": value} for value in (11.0, 21.0)],
        )
        make_store_dir(directory, changed)
        report = warehouse.ingest(directory)
        assert report.runs_replaced == 1 and report.trials_added == 2
        (run,) = warehouse.runs()
        assert run.run_id == original.run_id
        assert run.num_trials == 2
        assert len(warehouse.trials(run_ids=[run.run_id])) == 2  # no stale rows

    def test_without_a_manifest_the_scenario_comes_from_the_records(self, tmp_path, warehouse):
        directory = make_store_dir(tmp_path / "run", _platform_records())
        (directory / "manifest.json").unlink(missing_ok=True)
        warehouse.ingest(directory)
        (run,) = warehouse.runs()
        assert run.scenario == "platform-energy"
        assert run.spec is None


class TestCacheIngestion:
    def test_empty_cache_dir_is_a_clean_no_op(self, tmp_path, warehouse):
        empty = tmp_path / "cache"
        empty.mkdir()
        report = warehouse.ingest(empty)
        assert report.to_dict() == {
            "sources_scanned": 0, "runs_added": 0, "runs_replaced": 0,
            "runs_unchanged": 0, "trials_added": 0, "quarantined_skipped": 0,
        }
        assert warehouse.counts()["runs"] == 0

    def test_cache_entries_become_one_run_per_scenario(self, tmp_path, warehouse):
        cache = ResultCache(tmp_path / "cache")
        for record in _platform_records():
            cache_put(cache, record)
        report = warehouse.ingest(tmp_path / "cache")
        assert report.runs_added == 1 and report.trials_added == 3
        (run,) = warehouse.runs(source="cache")
        assert run.scenario == "platform-energy"

    def test_cache_runs_grow_incrementally(self, tmp_path, warehouse):
        cache = ResultCache(tmp_path / "cache")
        records = _platform_records()
        for record in records[:2]:
            cache_put(cache, record)
        warehouse.ingest(tmp_path / "cache")
        cache_put(cache, records[2])
        report = warehouse.ingest(tmp_path / "cache")
        assert report.runs_replaced == 1  # the run row is refreshed...
        assert report.trials_added == 1  # ...but only the new entry inserts
        (run,) = warehouse.runs(source="cache")
        assert len(warehouse.trials(run_ids=[run.run_id])) == 3

    def test_quarantined_files_are_skipped_and_counted(self, tmp_path, warehouse):
        cache = ResultCache(tmp_path / "cache")
        records = _platform_records()
        for record in records[:2]:
            cache_put(cache, record)
        key = cache_put(cache, records[2])
        # quarantine one entry the way the cache layer does (rename), and
        # plant one not-yet-quarantined corrupt payload
        path = tmp_path / "cache" / "platform-energy" / key[:2] / f"{key}.json"
        path.rename(path.with_suffix(".json.corrupt"))
        bad_key = "f" * 40
        bad = tmp_path / "cache" / "platform-energy" / bad_key[:2] / f"{bad_key}.json"
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{not json")

        report = warehouse.ingest(tmp_path / "cache")
        assert report.quarantined_skipped == 2
        assert report.trials_added == 2  # only the healthy entries

    def test_cache_payload_without_a_record_object_counts_as_quarantined(
        self, tmp_path, warehouse
    ):
        key = "a" * 40
        path = tmp_path / "cache" / "demo-scenario" / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"key": key, "record": "not-a-dict"}))
        report = warehouse.ingest(tmp_path / "cache")
        assert report.quarantined_skipped == 1
        assert report.trials_added == 0


class TestMixedIngestion:
    def test_service_data_dir_and_direct_sweep_land_as_distinct_sources(
        self, tmp_path, warehouse
    ):
        make_store_dir(tmp_path / "data" / "jobs" / "job-1", _platform_records())
        make_ser_run(tmp_path / "direct", [0.3, 0.1, 0.02])
        report = warehouse.ingest(tmp_path / "data", tmp_path / "direct")
        assert report.runs_added == 2
        assert {run.source for run in warehouse.runs()} == {"service", "store"}
        assert {run.scenario for run in warehouse.runs()} == {
            "platform-energy", "modem-ser-vs-snr",
        }

    def test_registered_scenarios_get_their_version_stamped(self, tmp_path, warehouse):
        make_ser_run(tmp_path / "run", [0.3, 0.1, 0.02])
        warehouse.ingest(tmp_path / "run")
        (run,) = warehouse.runs()
        assert run.scenario_version is not None  # from the live registry
