"""Service integration: auto-ingest of finished jobs + ``GET /api/v1/runs``."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments import get_scenario
from repro.service import JobQueue, make_server
from repro.warehouse import Warehouse


def _wait_done(job, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if job.state in ("done", "failed"):
            return
        time.sleep(0.02)
    raise AssertionError(f"job stuck in state {job.state!r}")


@pytest.fixture
def service(tmp_path):
    warehouse = Warehouse(tmp_path / "data" / "warehouse.sqlite")
    queue = JobQueue(tmp_path / "data", max_workers=1, warehouse=warehouse)
    server = make_server("127.0.0.1", 0, queue)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield base, queue, warehouse
    finally:
        server.shutdown()
        server.server_close()
        queue.shutdown(wait=True)
        thread.join(timeout=5)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.load(response)


class TestAutoIngest:
    def test_done_job_is_queryable_via_the_runs_endpoint(self, service):
        base, queue, warehouse = service
        job, _ = queue.submit(get_scenario("platform-energy").spec)
        _wait_done(job)

        payload = _get(f"{base}/api/v1/runs?scenario=platform-energy")
        assert payload["count"] == 1
        (run,) = payload["runs"]
        assert run["source"] == "service"
        assert run["scenario"] == "platform-energy"
        assert run["num_trials"] == job.spec.num_trials
        # and the same warehouse answers directly, off-HTTP
        assert len(warehouse.runs(source="service")) == 1

    def test_scenario_filter_excludes_other_scenarios(self, service):
        base, queue, _ = service
        job, _ = queue.submit(get_scenario("platform-energy").spec)
        _wait_done(job)
        assert _get(f"{base}/api/v1/runs?scenario=no-such-scenario")["count"] == 0
        assert _get(f"{base}/api/v1/runs")["count"] == 1

    def test_ingest_failure_does_not_fail_the_job(self, service, tmp_path):
        _, queue, warehouse = service
        # poison the warehouse path so every ingest raises
        warehouse.path = tmp_path / "data"  # a directory, not a database file
        job, _ = queue.submit(get_scenario("platform-energy").spec)
        _wait_done(job)
        assert job.state == "done"
        assert job.error is None


class TestWarehouseDisabled:
    def test_runs_endpoint_is_404_without_a_warehouse(self, tmp_path):
        queue = JobQueue(tmp_path / "data", max_workers=1)  # no warehouse
        server = make_server("127.0.0.1", 0, queue)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{base}/api/v1/runs")
            assert excinfo.value.code == 404
            assert "warehouse is disabled" in json.load(excinfo.value)["error"]
        finally:
            server.shutdown()
            server.server_close()
            queue.shutdown(wait=True)
            thread.join(timeout=5)
