"""Segmented stores through the warehouse: discovery, ingest, CI-aware compare."""

from __future__ import annotations

import pytest

from repro.experiments.segments import SegmentedResultStore
from repro.warehouse import Warehouse, discover, render_comparison
from repro.warehouse.compare import MetricDiff
from tests.warehouse.helpers import make_records, make_store_dir


def _replicated_ser_records(ser_by_snr):
    """Three replicates per SNR point so grouped means carry intervals."""
    params, metrics = [], []
    for snr, sers in ser_by_snr.items():
        for ser in sers:
            params.append({"snr_db": snr, "scheme": "DSSS"})
            metrics.append({"ser": ser})
    return make_records("modem-ser-vs-snr", params=params, metrics=metrics)


def _make_segmented_run(directory, records, merge=False):
    """A results directory holding only segments (an unmerged adaptive run)."""
    store = SegmentedResultStore(directory)
    half = len(records) // 2
    store.append(records[:half], label="wave-000")
    store.append(records[half:], label="wave-001")
    if merge:
        store.merge(spec={"scenario": records[0]["scenario"]})
    return directory


BASELINE = {-6: (0.30, 0.32, 0.28), -3: (0.10, 0.11, 0.09)}
DEGRADED = {-6: (0.30, 0.31, 0.29), -3: (0.20, 0.21, 0.19)}  # clearly worse at -3


class TestDiscovery:
    def test_a_segments_only_dir_is_classified_as_a_store(self, tmp_path):
        directory = _make_segmented_run(
            tmp_path / "adaptive", _replicated_ser_records(BASELINE)
        )
        assert list(discover(directory)) == [("store", directory)]

    def test_an_empty_segments_dir_is_not_a_run(self, tmp_path):
        (tmp_path / "empty" / "segments").mkdir(parents=True)
        assert list(discover(tmp_path / "empty")) == []


class TestSegmentedIngest:
    def test_segments_only_dir_round_trips_through_query(self, tmp_path):
        records = _replicated_ser_records(BASELINE)
        directory = _make_segmented_run(tmp_path / "adaptive", records)
        warehouse = Warehouse(tmp_path / "wh.sqlite")
        report = warehouse.ingest(directory)
        assert report.runs_added == 1
        assert report.trials_added == len(records)
        (run,) = warehouse.runs()
        assert run.scenario == "modem-ser-vs-snr"
        trials = warehouse.trials(run_ids=[run.run_id])
        assert [trial.record for trial in trials] == records

    def test_reingest_is_idempotent_until_a_new_segment_lands(self, tmp_path):
        records = _replicated_ser_records(BASELINE)
        directory = _make_segmented_run(tmp_path / "adaptive", records)
        warehouse = Warehouse(tmp_path / "wh.sqlite")
        warehouse.ingest(directory)
        assert warehouse.ingest(directory).runs_unchanged == 1

        # a resumed sweep appends a segment: the content hash moves, the run
        # is replaced in place with the merged (deduplicated) record set
        extra = make_records("modem-ser-vs-snr",
                             params=[{"snr_db": 0, "scheme": "DSSS"}],
                             metrics=[{"ser": 0.01}])
        extra[0]["trial_index"] = len(records)
        SegmentedResultStore(directory).append(extra, label="wave-002")
        report = warehouse.ingest(directory)
        assert report.runs_replaced == 1
        assert report.trials_added == len(records) + 1

    def test_merged_dir_prefers_results_jsonl(self, tmp_path):
        # once merge() has produced results.jsonl the canonical file wins
        # (same records either way — this pins the hashing source)
        records = _replicated_ser_records(BASELINE)
        directory = _make_segmented_run(tmp_path / "adaptive", records, merge=True)
        warehouse = Warehouse(tmp_path / "wh.sqlite")
        report = warehouse.ingest(directory)
        assert report.runs_added == 1
        (run,) = warehouse.runs()
        assert run.num_trials == len(records)
        assert run.spec == {"scenario": "modem-ser-vs-snr"}


class TestCompareWithIntervals:
    @pytest.fixture
    def warehouse(self, tmp_path):
        warehouse = Warehouse(tmp_path / "wh.sqlite")
        _make_segmented_run(tmp_path / "baseline",
                            _replicated_ser_records(BASELINE))
        _make_segmented_run(tmp_path / "degraded",
                            _replicated_ser_records(DEGRADED))
        warehouse.ingest(tmp_path / "baseline")
        warehouse.ingest(tmp_path / "degraded")
        return warehouse

    def test_diff_cells_carry_ci_half_widths_and_significance(self, warehouse):
        report = warehouse.compare("prev", "latest", by="snr_db",
                                   scenario="modem-ser-vs-snr")
        by_snr = {diff.by_value: diff for diff in report.diffs}
        for diff in by_snr.values():
            assert diff.ci_a is not None and diff.ci_a > 0.0
            assert diff.ci_b is not None and diff.ci_b > 0.0
        # -3 dB moved 0.10 -> 0.20, far beyond the tight replicate spread
        assert by_snr[-3].significant is True
        # -6 dB moved within the noise of its replicates
        assert by_snr[-6].significant is False

    def test_to_dict_and_render_expose_the_ci_columns(self, warehouse):
        report = warehouse.compare("prev", "latest", by="snr_db",
                                   scenario="modem-ser-vs-snr")
        cell = report.to_dict()["diffs"][0]
        assert {"ci_a", "ci_b", "significant"} <= set(cell)
        text = render_comparison(report)
        assert "±95% A" in text and "±95% B" in text and "Signif" in text
        assert "regression(s) beyond" in text  # CI smoke greps this summary

    def test_single_trial_sides_have_no_interval_and_no_verdict(self, tmp_path):
        warehouse = Warehouse(tmp_path / "wh.sqlite")
        for name, value in (("a", 0.1), ("b", 0.4)):
            make_store_dir(
                tmp_path / name,
                make_records("demo", params=[{"x": 1}], metrics=[{"y": value}]),
            )
            warehouse.ingest(tmp_path / name)
        report = warehouse.compare("prev", "latest", by="x")
        diff = next(d for d in report.diffs if d.metric == "y")
        assert diff.ci_a is None and diff.ci_b is None
        assert diff.significant is None
        assert "-" in render_comparison(report)


class TestMetricDiffSignificance:
    def test_significant_requires_delta_beyond_combined_half_widths(self):
        base = dict(metric="m", by=None, by_value=None, count_a=3, count_b=3)
        clear = MetricDiff(mean_a=0.1, mean_b=0.5, ci_a=0.05, ci_b=0.05, **base)
        assert clear.significant is True
        noisy = MetricDiff(mean_a=0.1, mean_b=0.5, ci_a=0.3, ci_b=0.3, **base)
        assert noisy.significant is False

    def test_missing_mean_or_interval_yields_none(self):
        base = dict(metric="m", by=None, by_value=None, count_a=1, count_b=1)
        assert MetricDiff(mean_a=None, mean_b=0.5, **base).significant is None
        assert MetricDiff(mean_a=0.1, mean_b=0.5, **base).significant is None
