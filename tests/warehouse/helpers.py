"""Builders for warehouse tests: synthetic result artifacts on disk.

These write the *exact* artifact shapes the experiments layer produces
(``ResultStore`` directories, ``ResultCache`` fan-outs) without running any
engine, so ingestion edge cases are cheap to set up.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.cache import trial_key
from repro.experiments.store import ResultStore


def make_records(
    scenario: str,
    params: list[dict[str, Any]],
    metrics: list[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Tidy records as ``run_sweep`` would emit them (identity + params + metrics)."""
    assert len(params) == len(metrics)
    return [
        {
            "scenario": scenario,
            "trial_index": index,
            "replicate": 0,
            "seed": 1000 + index,
            **param,
            **metric,
        }
        for index, (param, metric) in enumerate(zip(params, metrics))
    ]


def make_store_dir(directory, records, spec=None, stats=None):
    """Write a ``ResultStore`` directory (results.jsonl/csv + manifest.json)."""
    ResultStore(directory).write(records, spec=spec, stats=stats)
    return directory


def cache_put(cache, record):
    """Store one tidy record in a ``ResultCache`` under its real content key."""
    scenario = record["scenario"]
    params = {
        name: value
        for name, value in record.items()
        if name not in ("scenario", "trial_index", "replicate", "seed")
    }
    key = trial_key(scenario, "1", params, record["seed"])
    cache.put(scenario, key, record)
    return key


def ser_spec() -> dict[str, Any]:
    """A manifest spec dict for a synthetic modem-ser-vs-snr run."""
    return {
        "scenario": "modem-ser-vs-snr",
        "grid": {"snr_db": [-9, -6, -3], "scheme": ["DSSS"]},
        "zipped": {},
        "base": {},
        "replicates": 1,
        "seed": 1,
    }


def make_ser_run(directory, ser_values):
    """A synthetic modem-ser-vs-snr store run with the given SER curve."""
    snrs = [-9, -6, -3]
    assert len(ser_values) == len(snrs)
    records = make_records(
        "modem-ser-vs-snr",
        params=[{"snr_db": snr, "scheme": "DSSS"} for snr in snrs],
        metrics=[{"ser": ser} for ser in ser_values],
    )
    return make_store_dir(directory, records, spec=ser_spec())
