"""Unit tests for repro.channel.noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.noise import (
    ambient_noise_psd_db,
    complex_awgn,
    noise_power_for_snr,
    shipping_noise_psd_db,
    thermal_noise_psd_db,
    total_noise_level_db,
    turbulence_noise_psd_db,
    wind_noise_psd_db,
)


class TestNoiseComponents:
    def test_turbulence_dominates_at_very_low_frequency(self):
        f = 0.02
        turbulence = turbulence_noise_psd_db(f)
        assert turbulence > wind_noise_psd_db(f)
        assert turbulence > thermal_noise_psd_db(f)

    def test_thermal_dominates_at_very_high_frequency(self):
        f = 300.0
        thermal = thermal_noise_psd_db(f)
        assert thermal > turbulence_noise_psd_db(f)
        assert thermal > shipping_noise_psd_db(f)
        assert thermal > wind_noise_psd_db(f)

    def test_wind_increases_noise(self):
        assert wind_noise_psd_db(24.0, 15.0) > wind_noise_psd_db(24.0, 0.0)

    def test_shipping_increases_noise(self):
        assert shipping_noise_psd_db(1.0, 1.0) > shipping_noise_psd_db(1.0, 0.0)

    def test_shipping_factor_validated(self):
        with pytest.raises(ValueError):
            shipping_noise_psd_db(1.0, 1.5)


class TestAmbientNoise:
    def test_total_exceeds_every_component(self):
        f = 24.0
        total = ambient_noise_psd_db(f)
        assert total >= turbulence_noise_psd_db(f)
        assert total >= wind_noise_psd_db(f)
        assert total >= thermal_noise_psd_db(f)

    def test_decreases_with_frequency_in_modem_band(self):
        # in the 10-100 kHz band the ambient noise falls with frequency
        assert ambient_noise_psd_db(10.0) > ambient_noise_psd_db(50.0)

    def test_band_level_scales_with_bandwidth(self):
        narrow = total_noise_level_db(24.0, 1000.0)
        wide = total_noise_level_db(24.0, 10_000.0)
        assert wide - narrow == pytest.approx(10.0)


class TestNoisePowerForSnr:
    def test_zero_db_means_equal_power(self):
        assert noise_power_for_snr(2.0, 0.0) == pytest.approx(2.0)

    def test_ten_db(self):
        assert noise_power_for_snr(1.0, 10.0) == pytest.approx(0.1)

    def test_negative_snr(self):
        assert noise_power_for_snr(1.0, -10.0) == pytest.approx(10.0)


class TestComplexAwgn:
    def test_power_matches_request(self):
        noise = complex_awgn(200_000, 2.5, rng=0)
        assert float(np.mean(np.abs(noise) ** 2)) == pytest.approx(2.5, rel=0.02)

    def test_circular_symmetry(self):
        noise = complex_awgn(200_000, 1.0, rng=1)
        assert float(np.mean(noise.real**2)) == pytest.approx(0.5, rel=0.03)
        assert float(np.mean(noise.imag**2)) == pytest.approx(0.5, rel=0.03)
        assert abs(float(np.mean(noise.real * noise.imag))) < 0.01

    def test_shape_tuple(self):
        assert complex_awgn((3, 4), 1.0, rng=0).shape == (3, 4)

    def test_zero_power(self):
        np.testing.assert_array_equal(complex_awgn(10, 0.0, rng=0), np.zeros(10))

    def test_reproducible_with_seed(self):
        np.testing.assert_array_equal(complex_awgn(16, 1.0, rng=7), complex_awgn(16, 1.0, rng=7))

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            complex_awgn(10, -1.0)
