"""Unit tests for repro.channel.simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel
from repro.channel.simulator import (
    ChannelSimulator,
    add_noise_for_snr,
    apply_channel,
    measure_signal_power,
)


@pytest.fixture()
def simple_channel() -> MultipathChannel:
    return MultipathChannel(delays=np.array([0, 3]), gains=np.array([1.0, 0.5j]))


class TestMeasureSignalPower:
    def test_constant_signal(self):
        x = np.full(100, 2.0, dtype=complex)
        assert measure_signal_power(x) == pytest.approx(4.0)

    def test_zeros_ignored_by_default(self):
        x = np.concatenate([np.full(50, 2.0), np.zeros(50)]).astype(complex)
        assert measure_signal_power(x) == pytest.approx(4.0)
        assert measure_signal_power(x, ignore_zeros=False) == pytest.approx(2.0)

    def test_all_zero_signal(self):
        assert measure_signal_power(np.zeros(10, dtype=complex)) == 0.0


class TestAddNoiseForSnr:
    def test_measured_snr_close_to_target(self):
        rng = np.random.default_rng(0)
        signal = np.exp(1j * rng.uniform(0, 2 * np.pi, 100_000))  # unit power
        noisy = add_noise_for_snr(signal, 10.0, rng=1)
        noise = noisy - signal
        measured_snr = 10 * np.log10(1.0 / np.mean(np.abs(noise) ** 2))
        assert measured_snr == pytest.approx(10.0, abs=0.2)

    def test_explicit_signal_power_reference(self):
        signal = np.zeros(1000, dtype=complex)
        noisy = add_noise_for_snr(signal, 0.0, rng=0, signal_power=1.0)
        assert np.mean(np.abs(noisy) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_reproducible(self):
        signal = np.ones(64, dtype=complex)
        np.testing.assert_array_equal(
            add_noise_for_snr(signal, 5.0, rng=3), add_noise_for_snr(signal, 5.0, rng=3)
        )


class TestApplyChannel:
    def test_delegates_to_channel(self, simple_channel):
        x = np.arange(8, dtype=complex)
        np.testing.assert_allclose(apply_channel(x, simple_channel), simple_channel.apply(x))


class TestChannelSimulator:
    def test_noiseless_mode(self, simple_channel):
        sim = ChannelSimulator(channel=simple_channel, snr_db=None)
        x = np.ones(16, dtype=complex)
        np.testing.assert_allclose(sim.transmit(x), simple_channel.apply(x))

    def test_noisy_mode_changes_signal(self, simple_channel):
        sim = ChannelSimulator(channel=simple_channel, snr_db=10.0, rng=0)
        x = np.ones(64, dtype=complex)
        noisy = sim.transmit(x)
        clean = sim.transmit_noiseless(x)
        assert not np.allclose(noisy, clean)

    def test_high_snr_approaches_noiseless(self, simple_channel):
        sim = ChannelSimulator(channel=simple_channel, snr_db=80.0, rng=0)
        x = np.ones(64, dtype=complex)
        np.testing.assert_allclose(sim.transmit(x), sim.transmit_noiseless(x), atol=1e-2)
