"""Unit tests for repro.channel.geometry (image-method multipath)."""

from __future__ import annotations

import math

import pytest

from repro.channel.geometry import ShallowWaterGeometry, image_method_paths


@pytest.fixture()
def geometry() -> ShallowWaterGeometry:
    return ShallowWaterGeometry(
        water_depth_m=20.0,
        source_depth_m=10.0,
        receiver_depth_m=10.0,
        range_m=200.0,
    )


class TestShallowWaterGeometry:
    def test_direct_path_delay(self, geometry):
        assert geometry.direct_path_delay_s == pytest.approx(200.0 / 1500.0)

    def test_depth_bounds_validated(self):
        with pytest.raises(ValueError):
            ShallowWaterGeometry(water_depth_m=20.0, source_depth_m=25.0)

    def test_negative_reflection_loss_rejected(self):
        with pytest.raises(ValueError):
            ShallowWaterGeometry(surface_reflection_loss_db=-1.0)


class TestImageMethodPaths:
    def test_first_path_is_direct(self, geometry):
        paths = image_method_paths(geometry, max_bounces=2)
        direct = paths[0]
        assert direct.total_bounces == 0
        assert direct.length_m == pytest.approx(200.0)
        assert direct.delay_s == pytest.approx(geometry.direct_path_delay_s)

    def test_delays_sorted_and_positive(self, geometry):
        paths = image_method_paths(geometry, max_bounces=3)
        delays = [p.delay_s for p in paths]
        assert delays == sorted(delays)
        assert all(d > 0 for d in delays)

    def test_single_bounce_path_lengths(self, geometry):
        paths = image_method_paths(geometry, max_bounces=1)
        # with source and receiver both at mid-depth, the surface- and
        # bottom-bounce paths have the same length sqrt(range^2 + (2*10)^2)
        expected = math.hypot(200.0, 20.0)
        single_bounce = [p for p in paths if p.total_bounces == 1]
        assert len(single_bounce) == 2
        for p in single_bounce:
            assert p.length_m == pytest.approx(expected)

    def test_surface_bounce_flips_phase(self, geometry):
        paths = image_method_paths(geometry, max_bounces=1)
        surface = next(p for p in paths if p.surface_bounces == 1 and p.bottom_bounces == 0)
        bottom = next(p for p in paths if p.bottom_bounces == 1 and p.surface_bounces == 0)
        assert surface.amplitude < 0
        assert bottom.amplitude > 0

    def test_bounce_count_respected(self, geometry):
        paths = image_method_paths(geometry, max_bounces=2)
        assert all(p.total_bounces <= 2 for p in paths)

    def test_more_bounces_never_removes_paths(self, geometry):
        few = image_method_paths(geometry, max_bounces=1)
        many = image_method_paths(geometry, max_bounces=3)
        assert len(many) >= len(few)

    def test_direct_path_is_strongest(self, geometry):
        paths = image_method_paths(geometry, max_bounces=3)
        amplitudes = [abs(p.amplitude) for p in paths]
        assert amplitudes[0] == pytest.approx(max(amplitudes))

    def test_weak_paths_filtered(self, geometry):
        all_paths = image_method_paths(geometry, max_bounces=3, min_relative_amplitude=0.0)
        filtered = image_method_paths(geometry, max_bounces=3, min_relative_amplitude=0.5)
        assert len(filtered) <= len(all_paths)
        direct_amp = abs(filtered[0].amplitude)
        assert all(abs(p.amplitude) >= 0.5 * direct_amp for p in filtered)

    def test_delay_spread_within_10ms_for_paper_geometry(self, geometry):
        # the waveform design assumes ~10 ms multipath spread in shallow water
        paths = image_method_paths(geometry, max_bounces=3)
        spread = paths[-1].delay_s - paths[0].delay_s
        assert spread < 10e-3

    def test_zero_bounces_only_direct(self, geometry):
        paths = image_method_paths(geometry, max_bounces=0)
        assert len(paths) == 1
        assert paths[0].total_bounces == 0

    def test_reflection_loss_reduces_amplitude(self):
        lossless = ShallowWaterGeometry(surface_reflection_loss_db=0.0, bottom_reflection_loss_db=0.0)
        lossy = ShallowWaterGeometry(surface_reflection_loss_db=6.0, bottom_reflection_loss_db=10.0)
        amp_lossless = [abs(p.amplitude) for p in image_method_paths(lossless, max_bounces=1)]
        amp_lossy = [abs(p.amplitude) for p in image_method_paths(lossy, max_bounces=1)]
        # direct path unchanged, bounced paths weaker
        assert amp_lossy[0] == pytest.approx(amp_lossless[0])
        assert sum(amp_lossy) < sum(amp_lossless)
