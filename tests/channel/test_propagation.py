"""Unit tests for repro.channel.propagation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.channel.propagation import (
    propagation_delay,
    received_level_db,
    snr_db,
    sound_speed_mackenzie,
    spreading_loss_db,
    thorp_absorption_db_per_km,
    transmission_loss_db,
)


class TestThorpAbsorption:
    def test_increases_with_frequency(self):
        assert thorp_absorption_db_per_km(10.0) < thorp_absorption_db_per_km(30.0)
        assert thorp_absorption_db_per_km(30.0) < thorp_absorption_db_per_km(100.0)

    def test_reference_magnitudes(self):
        # well-known ballpark values: a few dB/km in the tens of kHz
        assert 1.0 < thorp_absorption_db_per_km(24.0) < 10.0
        assert thorp_absorption_db_per_km(1.0) < 0.2

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            thorp_absorption_db_per_km(0.0)

    @given(st.floats(min_value=0.1, max_value=500.0))
    def test_always_positive_property(self, frequency_khz):
        assert thorp_absorption_db_per_km(frequency_khz) > 0.0


class TestSpreadingLoss:
    def test_practical_spreading_at_1km(self):
        assert spreading_loss_db(1000.0, 1.5) == pytest.approx(45.0)

    def test_spherical_vs_cylindrical(self):
        assert spreading_loss_db(500.0, 2.0) > spreading_loss_db(500.0, 1.0)

    def test_sub_metre_distance_clamps_to_zero(self):
        assert spreading_loss_db(0.5) == pytest.approx(0.0)

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            spreading_loss_db(100.0, 3.0)


class TestTransmissionLoss:
    def test_monotone_in_distance(self):
        losses = [transmission_loss_db(d, 24.0) for d in (50, 100, 200, 400, 800)]
        assert losses == sorted(losses)

    def test_absorption_dominates_at_long_range_high_frequency(self):
        tl_low = transmission_loss_db(5000.0, 10.0)
        tl_high = transmission_loss_db(5000.0, 100.0)
        assert tl_high - tl_low > 100.0  # absorption term grows enormously

    def test_received_level(self):
        sl = 180.0
        rl = received_level_db(sl, 200.0, 24.0)
        assert rl == pytest.approx(sl - transmission_loss_db(200.0, 24.0))


class TestSonarEquation:
    def test_snr_decreases_with_range(self):
        snrs = [snr_db(180.0, d, 24.0, noise_level_db=70.0) for d in (100, 300, 1000)]
        assert snrs == sorted(snrs, reverse=True)

    def test_directivity_adds_directly(self):
        base = snr_db(180.0, 200.0, 24.0, 70.0)
        with_di = snr_db(180.0, 200.0, 24.0, 70.0, directivity_index_db=3.0)
        assert with_di == pytest.approx(base + 3.0)


class TestSoundSpeed:
    def test_standard_conditions(self):
        # ~1500 m/s for typical coastal water
        assert 1480.0 < sound_speed_mackenzie(12.0, 35.0, 20.0) < 1520.0

    def test_increases_with_temperature(self):
        assert sound_speed_mackenzie(20.0) > sound_speed_mackenzie(5.0)

    def test_increases_with_depth(self):
        assert sound_speed_mackenzie(depth_m=1000.0) > sound_speed_mackenzie(depth_m=10.0)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            sound_speed_mackenzie(temperature_c=80.0)


class TestPropagationDelay:
    def test_200m_at_1500ms(self):
        assert propagation_delay(200.0, 1500.0) == pytest.approx(0.1333, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            propagation_delay(0.0)
        with pytest.raises(ValueError):
            propagation_delay(100.0, 0.0)
