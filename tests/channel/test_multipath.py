"""Unit tests for repro.channel.multipath."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.geometry import ShallowWaterGeometry
from repro.channel.multipath import MultipathChannel, random_sparse_channel


class TestMultipathChannelConstruction:
    def test_basic_properties(self):
        channel = MultipathChannel(
            delays=np.array([0, 5, 20]),
            gains=np.array([1.0, 0.5j, -0.25 + 0.1j]),
        )
        assert channel.num_paths == 3
        assert channel.delay_spread == 20
        assert channel.total_power == pytest.approx(1.0 + 0.25 + 0.0725)
        delay, gain = channel.strongest_path()
        assert delay == 0 and gain == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultipathChannel(delays=np.array([0, 0]), gains=np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            MultipathChannel(delays=np.array([5, 2]), gains=np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            MultipathChannel(delays=np.array([-1]), gains=np.array([1.0]))
        with pytest.raises(ValueError):
            MultipathChannel(delays=np.array([0, 1]), gains=np.array([1.0]))
        with pytest.raises(ValueError):
            MultipathChannel(delays=np.array([], dtype=int), gains=np.array([]))


class TestConversions:
    def test_impulse_response(self):
        channel = MultipathChannel(delays=np.array([0, 3]), gains=np.array([1.0, 0.5j]))
        h = channel.impulse_response()
        assert h.shape == (4,)
        assert h[0] == 1.0 and h[3] == 0.5j and h[1] == 0.0

    def test_impulse_response_with_padding(self):
        channel = MultipathChannel(delays=np.array([1]), gains=np.array([1.0]))
        assert channel.impulse_response(10).shape == (10,)

    def test_coefficient_vector_roundtrip(self):
        channel = MultipathChannel(delays=np.array([2, 7]), gains=np.array([0.8, -0.3j]))
        f = channel.coefficient_vector(12)
        back = MultipathChannel.from_coefficient_vector(f)
        np.testing.assert_array_equal(back.delays, channel.delays)
        np.testing.assert_allclose(back.gains, channel.gains)

    def test_coefficient_vector_out_of_grid(self):
        channel = MultipathChannel(delays=np.array([20]), gains=np.array([1.0]))
        with pytest.raises(ValueError):
            channel.coefficient_vector(10)

    def test_from_coefficient_vector_threshold(self):
        f = np.array([1.0, 0.01, 0.0, 0.5])
        channel = MultipathChannel.from_coefficient_vector(f, magnitude_threshold=0.1)
        np.testing.assert_array_equal(channel.delays, [0, 3])

    def test_from_all_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            MultipathChannel.from_coefficient_vector(np.zeros(5))


class TestApply:
    def test_single_unit_tap_is_identity(self):
        channel = MultipathChannel(delays=np.array([0]), gains=np.array([1.0]))
        x = np.arange(6, dtype=complex)
        np.testing.assert_allclose(channel.apply(x), x)

    def test_pure_delay(self):
        channel = MultipathChannel(delays=np.array([2]), gains=np.array([1.0]))
        x = np.array([1.0, 2.0, 3.0, 4.0], dtype=complex)
        np.testing.assert_allclose(channel.apply(x), [0, 0, 1.0, 2.0])

    def test_matches_full_convolution_prefix(self):
        rng = np.random.default_rng(0)
        channel = MultipathChannel(
            delays=np.array([0, 4, 11]),
            gains=np.array([1.0, 0.5 - 0.2j, -0.3j]),
        )
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        full = np.convolve(x, channel.impulse_response())[:64]
        np.testing.assert_allclose(channel.apply(x), full, atol=1e-12)

    def test_taps_beyond_signal_ignored(self):
        channel = MultipathChannel(delays=np.array([0, 100]), gains=np.array([1.0, 1.0]))
        x = np.ones(10, dtype=complex)
        np.testing.assert_allclose(channel.apply(x), x)


class TestFromGeometry:
    def test_direct_tap_at_zero_and_unit_peak(self):
        geometry = ShallowWaterGeometry()
        channel = MultipathChannel.from_geometry(geometry, sampling_interval_s=1e-4)
        assert channel.delays[0] == 0
        assert np.max(np.abs(channel.gains)) == pytest.approx(1.0)

    def test_max_delay_cap(self):
        geometry = ShallowWaterGeometry(range_m=50.0)
        channel = MultipathChannel.from_geometry(
            geometry, sampling_interval_s=1e-4, max_delay_samples=30
        )
        assert channel.delays.max() < 30

    def test_delay_spread_fits_aquamodem_grid(self):
        geometry = ShallowWaterGeometry()
        channel = MultipathChannel.from_geometry(geometry, sampling_interval_s=1e-4)
        assert channel.delay_spread < 112


class TestRandomSparseChannel:
    def test_requested_paths_and_direct_tap(self):
        channel = random_sparse_channel(num_paths=4, max_delay=80, rng=0)
        assert channel.num_paths == 4
        assert channel.delays[0] == 0

    def test_peak_normalised(self):
        channel = random_sparse_channel(num_paths=5, max_delay=100, rng=1)
        assert np.max(np.abs(channel.gains)) == pytest.approx(1.0)

    def test_min_separation_respected(self):
        channel = random_sparse_channel(num_paths=6, max_delay=100, rng=2, min_separation=5)
        assert np.min(np.diff(channel.delays)) >= 5

    def test_reproducible(self):
        a = random_sparse_channel(3, 50, rng=9)
        b = random_sparse_channel(3, 50, rng=9)
        np.testing.assert_array_equal(a.delays, b.delays)
        np.testing.assert_allclose(a.gains, b.gains)

    def test_impossible_placement_rejected(self):
        with pytest.raises(ValueError):
            random_sparse_channel(num_paths=10, max_delay=5, min_separation=3)

    @settings(max_examples=25, deadline=None)
    @given(
        num_paths=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_delays_within_bounds_property(self, num_paths, seed):
        channel = random_sparse_channel(num_paths=num_paths, max_delay=100, rng=seed)
        assert channel.num_paths == num_paths
        assert channel.delays.min() >= 0
        assert channel.delays.max() < 100
        assert np.all(np.diff(channel.delays) > 0)
