"""Unit tests for repro.fixedpoint.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.fmt import FixedPointFormat
from repro.fixedpoint.metrics import (
    dynamic_range_scale,
    max_abs_error,
    quantization_noise_power,
    signal_to_quantization_noise_ratio,
)
from repro.fixedpoint.quantize import quantize


class TestNoiseMetrics:
    def test_zero_error_for_identical_arrays(self):
        x = np.linspace(-1, 1, 10)
        assert quantization_noise_power(x, x) == 0.0
        assert max_abs_error(x, x) == 0.0
        assert signal_to_quantization_noise_ratio(x, x) == float("inf")

    def test_known_error(self):
        original = np.array([1.0, 1.0])
        quantised = np.array([0.9, 1.1])
        assert quantization_noise_power(original, quantised) == pytest.approx(0.01)
        assert max_abs_error(original, quantised) == pytest.approx(0.1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            quantization_noise_power(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_sqnr_zero_signal_rejected(self):
        with pytest.raises(ValueError):
            signal_to_quantization_noise_ratio(np.zeros(4), np.ones(4))

    def test_sqnr_improves_with_word_length(self):
        rng = np.random.default_rng(1)
        signal = rng.uniform(-1, 1, 2000)
        sqnrs = []
        for bits in (6, 8, 10, 12):
            fmt = FixedPointFormat.for_unit_range(bits)
            sqnrs.append(signal_to_quantization_noise_ratio(signal, quantize(signal, fmt)))
        assert sqnrs == sorted(sqnrs)
        # roughly 6 dB per extra bit
        assert sqnrs[1] - sqnrs[0] == pytest.approx(12.0, abs=3.0)

    def test_complex_inputs_supported(self):
        x = np.array([1 + 1j, 0.5 - 0.5j])
        y = x + 0.01
        assert quantization_noise_power(x, y) == pytest.approx(1e-4)


class TestDynamicRangeScale:
    def test_unit_data_gets_unit_scale(self):
        assert dynamic_range_scale(np.array([0.5, -0.9])) == pytest.approx(1.0)

    def test_large_data_scaled_by_power_of_two(self):
        scale = dynamic_range_scale(np.array([100.0]))
        assert scale == 128.0

    def test_small_data_gets_fractional_scale(self):
        scale = dynamic_range_scale(np.array([0.1]))
        assert scale == pytest.approx(0.125)

    def test_zero_data(self):
        assert dynamic_range_scale(np.zeros(3)) == 1.0

    def test_complex_data_uses_max_component(self):
        assert dynamic_range_scale(np.array([1.0 + 200.0j])) == 256.0

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_scale_is_power_of_two_and_covers_property(self, peak):
        scale = dynamic_range_scale(np.array([peak]))
        exponent = np.log2(scale)
        assert exponent == pytest.approx(round(exponent))
        assert peak / scale <= 1.0 + 1e-12
        # scaling is tight: one factor of two less would not cover the peak
        assert peak / (scale / 2.0) > 1.0 - 1e-12
