"""Property-based tests of the fixed-point substrate (hypothesis).

Four families of invariants:

* **round-trip bounds** — quantisation error never exceeds the grid step
  implied by the rounding mode, and quantisation is idempotent;
* **monotonicity** — widening the word length never increases the
  quantisation error of any single value (the grids are nested);
* **range safety** — saturation and wrap-around both keep raw codes inside
  the format's representable range for arbitrary finite inputs;
* **batch == loop-of-scalar** — every batched primitive
  (``quantize_batch``, ``quantize_to_format_batch``,
  ``dynamic_range_scale_batch``, batched :class:`FixedPointArray`
  arithmetic) is bit-identical to a Python loop of its scalar counterpart
  over random shapes, dtypes and per-row scales.

The CI quality job runs these under the pinned, derandomised ``ci``
hypothesis profile (see ``tests/conftest.py``), so the gate is reproducible
run to run.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402
from hypothesis.extra import numpy as hnp  # noqa: E402

from repro.fixedpoint.array import FixedPointArray  # noqa: E402
from repro.fixedpoint.fmt import FixedPointFormat  # noqa: E402
from repro.fixedpoint.metrics import (  # noqa: E402
    dynamic_range_scale,
    dynamic_range_scale_batch,
)
from repro.fixedpoint.quantize import (  # noqa: E402
    OverflowMode,
    RoundingMode,
    quantize,
    quantize_batch,
    quantize_to_format,
    quantize_to_format_batch,
    raw_values,
    raw_values_batch,
)

ROUNDINGS = st.sampled_from(list(RoundingMode))
OVERFLOWS = st.sampled_from(list(OverflowMode))

#: Formats whose grids the value strategies target comfortably.
formats = st.builds(
    FixedPointFormat,
    word_length=st.integers(2, 20),
    fraction_length=st.integers(-2, 24),
    signed=st.just(True),
)


def finite_floats(bound: float) -> st.SearchStrategy[float]:
    return st.floats(-bound, bound, allow_nan=False, allow_infinity=False)


def float_rows(min_rows: int = 1) -> st.SearchStrategy[np.ndarray]:
    return hnp.arrays(
        dtype=st.sampled_from((np.float32, np.float64)),
        shape=hnp.array_shapes(min_dims=2, max_dims=3, min_side=min_rows, max_side=6),
        elements=st.floats(-8, 8, allow_nan=False, allow_infinity=False, width=32),
    )


power_of_two_scales = st.integers(-6, 6).map(lambda e: 2.0 ** e)


class TestRoundTripBounds:
    @given(fmt=formats, value=finite_floats(4.0), rounding=ROUNDINGS)
    def test_error_bounded_by_grid_step(self, fmt, value, rounding):
        value = float(np.clip(value, fmt.min_value, fmt.max_value))
        quantised = float(quantize(value, fmt, rounding))
        step = fmt.resolution
        if rounding is RoundingMode.NEAREST:
            assert abs(quantised - value) <= step / 2
        else:
            assert -step < quantised - value <= 0 or abs(quantised - value) <= step

    @given(fmt=formats, value=finite_floats(64.0), rounding=ROUNDINGS, overflow=OVERFLOWS)
    def test_quantisation_is_idempotent(self, fmt, value, rounding, overflow):
        once = quantize(value, fmt, rounding, overflow)
        twice = quantize(once, fmt, rounding, overflow)
        assert np.array_equal(once, twice)


class TestMonotonicity:
    @given(
        value=finite_floats(0.9),
        word_length=st.integers(2, 22),
        rounding=ROUNDINGS,
    )
    def test_error_never_grows_with_word_length(self, value, word_length, rounding):
        """Grids of successive word lengths are nested, so error is monotone."""
        narrow, _ = quantize_to_format(value, word_length, max_abs_value=1.0,
                                       rounding=rounding)
        wide, _ = quantize_to_format(value, word_length + 1, max_abs_value=1.0,
                                     rounding=rounding)
        assert abs(float(wide) - value) <= abs(float(narrow) - value)


class TestRangeSafety:
    @given(fmt=formats, value=finite_floats(1e9), rounding=ROUNDINGS)
    def test_saturation_never_exceeds_format_range(self, fmt, value, rounding):
        raw = raw_values(value, fmt, rounding, OverflowMode.SATURATE)
        assert fmt.raw_min <= int(raw) <= fmt.raw_max
        quantised = float(quantize(value, fmt, rounding, OverflowMode.SATURATE))
        assert fmt.min_value <= quantised <= fmt.max_value

    @given(fmt=formats, value=finite_floats(1e9), rounding=ROUNDINGS)
    def test_wraparound_stays_in_range(self, fmt, value, rounding):
        raw = raw_values(value, fmt, rounding, OverflowMode.WRAP)
        assert fmt.raw_min <= int(raw) <= fmt.raw_max

    @given(fmt=formats, values=float_rows(), rounding=ROUNDINGS, overflow=OVERFLOWS)
    def test_from_float_always_constructs(self, fmt, values, rounding, overflow):
        """FixedPointArray's range validation accepts every quantised input."""
        array = FixedPointArray.from_float(values, fmt, rounding, overflow)
        assert array.raw.shape == values.shape
        assert array.raw.min(initial=0) >= fmt.raw_min
        assert array.raw.max(initial=0) <= fmt.raw_max


class TestBatchEqualsLoopOfScalar:
    @given(
        values=float_rows(),
        fmt=formats,
        rounding=ROUNDINGS,
        overflow=OVERFLOWS,
        data=st.data(),
    )
    def test_quantize_batch(self, values, fmt, rounding, overflow, data):
        scales = np.asarray(
            data.draw(
                st.lists(power_of_two_scales, min_size=values.shape[0],
                         max_size=values.shape[0])
            )
        )
        batched = quantize_batch(values, fmt, rounding, overflow, scales=scales)
        looped = np.stack([
            quantize(values[t] / scales[t], fmt, rounding, overflow) * scales[t]
            for t in range(values.shape[0])
        ])
        assert np.array_equal(batched, looped)

    @given(values=float_rows(), fmt=formats, rounding=ROUNDINGS, overflow=OVERFLOWS)
    def test_raw_values_batch(self, values, fmt, rounding, overflow):
        batched = raw_values_batch(values, fmt, rounding, overflow)
        looped = np.stack([
            raw_values(values[t], fmt, rounding, overflow)
            for t in range(values.shape[0])
        ])
        assert np.array_equal(batched, looped)

    @given(
        values=hnp.arrays(
            dtype=st.sampled_from((np.float32, np.float64)),
            shape=hnp.array_shapes(min_dims=2, max_dims=3, min_side=1, max_side=6),
            # range wide enough to cross power-of-two peaks in float32, where
            # a narrow-precision log2 once halved the scale vs the scalar path
            elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False,
                               width=32),
        ),
        imag=st.booleans(),
    )
    def test_dynamic_range_scale_batch(self, values, imag):
        data = values + 1j * values[::-1] if imag else values
        batched = dynamic_range_scale_batch(data)
        looped = np.array([dynamic_range_scale(data[t]) for t in range(data.shape[0])])
        assert np.array_equal(batched, looped)

    def test_dynamic_range_scale_batch_float32_near_power_of_two(self):
        """Regression: float32 peaks just above 2**k must scale to 2**(k+1)."""
        row = np.array([[np.float32(16.000002)]], dtype=np.float32)
        assert dynamic_range_scale_batch(row)[0] == dynamic_range_scale(row[0]) == 32.0

    @pytest.mark.parametrize("bad", (np.nan, np.inf, -np.inf))
    def test_dynamic_range_scale_rejects_non_finite_in_both_paths(self, bad):
        """Regression: the scalar path rejects NaN/inf; the batch must too,
        not silently treat the row as all-zero (scale 1.0) or emit inf."""
        row = np.array([1.0, bad, 2.0])
        with pytest.raises(ValueError, match="finite"):
            dynamic_range_scale(row)
        with pytest.raises(ValueError, match="finite"):
            dynamic_range_scale_batch(np.stack([row, np.ones(3)]))

    @given(
        values=float_rows(),
        word_length=st.integers(2, 20),
        rounding=ROUNDINGS,
        overflow=OVERFLOWS,
        imag=st.booleans(),
    )
    def test_quantize_to_format_batch(self, values, word_length, rounding, overflow, imag):
        data = values.astype(np.float64) + 1j * values[::-1] if imag else values
        batched, batched_fmts = quantize_to_format_batch(
            data, word_length, rounding=rounding, overflow=overflow
        )
        for t in range(data.shape[0]):
            looped, looped_fmt = quantize_to_format(
                data[t], word_length, rounding=rounding, overflow=overflow
            )
            assert looped_fmt == batched_fmts[t]
            assert np.array_equal(batched[t], looped)

    @given(
        rows=hnp.arrays(
            np.float64, hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=8),
            elements=st.floats(-2, 2, allow_nan=False, allow_infinity=False),
        ),
        word_length=st.integers(2, 16),
        rounding=ROUNDINGS,
        overflow=OVERFLOWS,
    )
    def test_fixed_point_array_dot_batch(self, rows, word_length, rounding, overflow):
        """Batched dot == loop of 1-D dots, inside the exact-arithmetic domain.

        Word lengths <= 16 over <= 8 terms keep every product and partial
        sum within float64's integer mantissa, where any summation order
        gives the same bits — that is the documented exactness domain of
        the batched accumulate.
        """
        fmt = FixedPointFormat.for_unit_range(word_length)
        left = FixedPointArray.from_float(rows / 2, fmt)
        right = FixedPointArray.from_float(rows[::-1] / 2, fmt)
        batched = left.dot(right, rounding=rounding, overflow=overflow)
        for t in range(rows.shape[0]):
            single = FixedPointArray(left.raw[t], fmt).dot(
                FixedPointArray(right.raw[t], fmt),
                rounding=rounding, overflow=overflow,
            )
            assert batched.raw[t] == single.raw
            assert batched.fmt == single.fmt

    @given(
        rows=hnp.arrays(
            np.float64, hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=8),
            elements=st.floats(-2, 2, allow_nan=False, allow_infinity=False),
        ),
        word_length=st.integers(2, 16),
    )
    def test_fixed_point_array_elementwise_batch(self, rows, word_length):
        fmt = FixedPointFormat.for_unit_range(word_length)
        matrix = FixedPointArray.from_float(rows / 2, fmt)
        vector = FixedPointArray.from_float(rows[0] / 2, fmt)
        total = matrix.add(vector)
        product = matrix.multiply(vector)
        for t in range(rows.shape[0]):
            row = FixedPointArray(matrix.raw[t], fmt)
            assert np.array_equal(total.raw[t], row.add(vector).raw)
            assert np.array_equal(product.raw[t], row.multiply(vector).raw)
