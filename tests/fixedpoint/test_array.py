"""Unit tests for repro.fixedpoint.array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint.array import FixedPointArray
from repro.fixedpoint.fmt import FixedPointFormat

FMT = FixedPointFormat(8, 6)


class TestConstruction:
    def test_from_float_roundtrip(self):
        values = np.array([0.25, -0.5, 1.0])
        arr = FixedPointArray.from_float(values, FMT)
        np.testing.assert_allclose(arr.to_float(), values)

    def test_raw_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FixedPointArray(np.array([1000]), FMT)

    def test_len_shape_getitem(self):
        arr = FixedPointArray.from_float(np.array([0.0, 0.5, -0.5]), FMT)
        assert len(arr) == 3
        assert arr.shape == (3,)
        assert arr[1].to_float()[0] == pytest.approx(0.5)


class TestArithmetic:
    def test_add_exact_for_representable_values(self):
        a = FixedPointArray.from_float(np.array([0.25, 0.5]), FMT)
        b = FixedPointArray.from_float(np.array([0.5, -0.25]), FMT)
        result = a.add(b)
        np.testing.assert_allclose(result.to_float(), [0.75, 0.25])

    def test_subtract(self):
        a = FixedPointArray.from_float(np.array([1.0]), FMT)
        b = FixedPointArray.from_float(np.array([0.25]), FMT)
        assert a.subtract(b).to_float()[0] == pytest.approx(0.75)

    def test_multiply_full_precision_default(self):
        a = FixedPointArray.from_float(np.array([0.5]), FMT)
        b = FixedPointArray.from_float(np.array([0.25]), FMT)
        result = a.multiply(b)
        assert result.to_float()[0] == pytest.approx(0.125)
        assert result.fmt.word_length == 16

    def test_multiply_with_narrow_result_format_quantises(self):
        narrow = FixedPointFormat(4, 3)
        a = FixedPointArray.from_float(np.array([0.30]), FMT)
        b = FixedPointArray.from_float(np.array([0.30]), FMT)
        result = a.multiply(b, result_fmt=narrow)
        # exact product ~0.09 is not representable at 3 fraction bits -> 0.125 or 0.0
        assert result.to_float()[0] in (0.0, 0.125)

    def test_dot_matches_float_dot_for_representable_inputs(self):
        rng = np.random.default_rng(3)
        values_a = np.round(rng.uniform(-1, 1, 16) * 64) / 64
        values_b = np.round(rng.uniform(-1, 1, 16) * 64) / 64
        a = FixedPointArray.from_float(values_a, FMT)
        b = FixedPointArray.from_float(values_b, FMT)
        result = a.dot(b)
        assert result.to_float()[()] == pytest.approx(float(values_a @ values_b), abs=1e-6)

    def test_dot_requires_1d_equal_length(self):
        a = FixedPointArray.from_float(np.array([0.5, 0.5]), FMT)
        b = FixedPointArray.from_float(np.array([0.5]), FMT)
        with pytest.raises(ValueError):
            a.dot(b)

    def test_scale_by_float(self):
        a = FixedPointArray.from_float(np.array([0.5]), FMT)
        assert a.scale(0.5).to_float()[0] == pytest.approx(0.25)

    def test_saturating_addition(self):
        narrow = FixedPointFormat(4, 2)  # max 1.75
        a = FixedPointArray.from_float(np.array([1.75]), narrow)
        result = a.add(a, result_fmt=narrow)
        assert result.to_float()[0] == pytest.approx(narrow.max_value)
