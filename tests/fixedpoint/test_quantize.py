"""Unit tests for repro.fixedpoint.quantize."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.fixedpoint.fmt import FixedPointFormat
from repro.fixedpoint.quantize import (
    OverflowMode,
    RoundingMode,
    quantize,
    quantize_to_format,
    raw_values,
)

FMT8 = FixedPointFormat(8, 7)


class TestRawValues:
    def test_simple_values(self):
        raw = raw_values(np.array([0.0, 0.5, -0.5]), FMT8)
        np.testing.assert_array_equal(raw, [0, 64, -64])

    def test_saturation(self):
        raw = raw_values(np.array([2.0, -2.0]), FMT8)
        np.testing.assert_array_equal(raw, [127, -128])

    def test_wrap_mode(self):
        fmt = FixedPointFormat(4, 0)
        raw = raw_values(np.array([8.0]), fmt, overflow=OverflowMode.WRAP)
        assert raw[0] == -8  # 8 wraps to -8 in 4-bit two's complement

    def test_truncate_vs_nearest(self):
        fmt = FixedPointFormat(8, 0)
        assert raw_values(1.7, fmt, rounding=RoundingMode.NEAREST)[()] == 2
        assert raw_values(1.7, fmt, rounding=RoundingMode.TRUNCATE)[()] == 1
        assert raw_values(-1.2, fmt, rounding=RoundingMode.TRUNCATE)[()] == -2

    def test_rejects_complex(self):
        with pytest.raises(TypeError):
            raw_values(np.array([1 + 1j]), FMT8)


class TestQuantize:
    def test_idempotent(self):
        values = np.linspace(-1, 1, 37)
        once = quantize(values, FMT8)
        twice = quantize(once, FMT8)
        np.testing.assert_allclose(once, twice)

    def test_error_bounded_by_half_lsb(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-0.9, 0.9, size=1000)
        quantised = quantize(values, FMT8)
        assert np.max(np.abs(values - quantised)) <= FMT8.resolution / 2 + 1e-12

    def test_complex_quantised_componentwise(self):
        value = np.array([0.3 + 0.7j])
        q = quantize(value, FMT8)
        assert q.real[0] == pytest.approx(quantize(0.3, FMT8))
        assert q.imag[0] == pytest.approx(quantize(0.7, FMT8))

    def test_exactly_representable_values_unchanged(self):
        grid = np.arange(-128, 128) * FMT8.resolution
        np.testing.assert_allclose(quantize(grid, FMT8), grid)

    def test_preserves_shape(self):
        values = np.zeros((3, 5))
        assert quantize(values, FMT8).shape == (3, 5)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=50),
            elements=st.floats(min_value=-10, max_value=10),
        )
    )
    def test_result_always_in_range_property(self, values):
        q = quantize(values, FMT8)
        assert np.all(q <= FMT8.max_value + 1e-12)
        assert np.all(q >= FMT8.min_value - 1e-12)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=50),
            elements=st.floats(min_value=-0.99, max_value=0.99),
        )
    )
    def test_in_range_error_bounded_property(self, values):
        q = quantize(values, FMT8)
        assert np.max(np.abs(values - q)) <= FMT8.resolution / 2 + 1e-12


class TestQuantizeToFormat:
    def test_scale_inferred_from_data(self):
        values = np.array([50.0, -75.0, 100.0])
        quantised, fmt = quantize_to_format(values, 8)
        assert fmt.contains(100.0)
        assert np.max(np.abs(values - quantised)) <= fmt.resolution

    def test_explicit_max_abs(self):
        # covering +1.0 exactly needs one integer bit, so 6 fraction bits remain
        _, fmt = quantize_to_format(np.array([0.1]), 8, max_abs_value=1.0)
        assert fmt.fraction_length == 6
        assert fmt.contains(1.0)

    def test_all_zero_input(self):
        quantised, fmt = quantize_to_format(np.zeros(4), 8)
        np.testing.assert_array_equal(quantised, np.zeros(4))

    def test_complex_input_uses_larger_component(self):
        values = np.array([1.0 + 100.0j])
        _, fmt = quantize_to_format(values, 12)
        assert fmt.contains(100.0)
