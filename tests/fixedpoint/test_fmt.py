"""Unit tests for repro.fixedpoint.fmt."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.fmt import FixedPointFormat


class TestBasicProperties:
    def test_q8_6_ranges(self):
        fmt = FixedPointFormat(8, 6)
        assert fmt.resolution == pytest.approx(1 / 64)
        assert fmt.raw_min == -128
        assert fmt.raw_max == 127
        assert fmt.min_value == pytest.approx(-2.0)
        assert fmt.max_value == pytest.approx(127 / 64)
        assert fmt.num_levels == 256

    def test_unsigned_format(self):
        fmt = FixedPointFormat(8, 8, signed=False)
        assert fmt.raw_min == 0
        assert fmt.raw_max == 255
        assert fmt.min_value == 0.0
        assert fmt.max_value == pytest.approx(255 / 256)

    def test_integer_length(self):
        assert FixedPointFormat(16, 8).integer_length == 7
        assert FixedPointFormat(8, 8, signed=False).integer_length == 0

    def test_contains(self):
        fmt = FixedPointFormat(8, 7)
        assert fmt.contains(0.5)
        assert not fmt.contains(1.5)
        assert fmt.contains(-1.0)

    def test_str_representation(self):
        assert str(FixedPointFormat(8, 6)) == "Fix8_6"
        assert str(FixedPointFormat(8, 6, signed=False)) == "UFix8_6"

    def test_invalid_word_length(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 0)
        with pytest.raises(ValueError):
            FixedPointFormat(65, 0)


class TestFormatAlgebra:
    def test_multiply_format_widths_add(self):
        a = FixedPointFormat(8, 6)
        b = FixedPointFormat(8, 7)
        prod = a.multiply_format(b)
        assert prod.word_length == 16
        assert prod.fraction_length == 13

    def test_add_format_has_growth_bit(self):
        a = FixedPointFormat(8, 6)
        total = a.add_format(a)
        assert total.word_length == 9
        assert total.fraction_length == 6

    def test_accumulate_format_growth(self):
        a = FixedPointFormat(8, 6)
        acc = a.accumulate_format(224)
        # 224 terms need ceil(log2(223)) = 8 growth bits
        assert acc.word_length == 16
        assert acc.fraction_length == 6

    def test_accumulate_single_term(self):
        a = FixedPointFormat(8, 6)
        assert a.accumulate_format(1).word_length == a.word_length + 1

    def test_accumulate_caps_at_64(self):
        a = FixedPointFormat(60, 6)
        assert a.accumulate_format(1 << 30).word_length == 64


class TestConstructors:
    def test_for_unit_range_signed(self):
        fmt = FixedPointFormat.for_unit_range(8)
        assert fmt.fraction_length == 7
        assert fmt.min_value == pytest.approx(-1.0)
        assert fmt.max_value < 1.0

    def test_for_unit_range_unsigned(self):
        fmt = FixedPointFormat.for_unit_range(8, signed=False)
        assert fmt.fraction_length == 8
        assert fmt.max_value < 1.0

    def test_for_range_covers_value(self):
        fmt = FixedPointFormat.for_range(8, 112.0)
        assert fmt.max_value >= 112.0 or fmt.max_value == pytest.approx(112.0, rel=0.05)
        assert fmt.contains(100.0)

    def test_for_range_rejects_non_positive(self):
        with pytest.raises(ValueError):
            FixedPointFormat.for_range(8, 0.0)

    @given(
        word=st.integers(min_value=4, max_value=24),
        magnitude=st.floats(min_value=1e-3, max_value=1e6),
    )
    def test_for_range_always_covers_property(self, word, magnitude):
        fmt = FixedPointFormat.for_range(word, magnitude)
        # the chosen format must cover the requested magnitude (within one LSB)
        assert fmt.max_value + fmt.resolution >= magnitude
