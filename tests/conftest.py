"""Shared fixtures for the test suite.

Expensive objects (the full 224x112 AquaModem signal matrices, the IP-core
simulators) are session-scoped so the cost is paid once; everything stochastic
is seeded for reproducibility.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

try:  # property-based tests are optional: they skip without hypothesis
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - exercised only without the extra
    pass
else:
    # "ci" is the pinned profile the CI quality job runs with
    # (HYPOTHESIS_PROFILE=ci): derandomised — a fixed seed per test — so the
    # gate cannot flake, with a deeper example budget than the dev default.
    settings.register_profile(
        "ci",
        max_examples=80,
        derandomize=True,
        deadline=None,
        print_blob=True,
        suppress_health_check=(HealthCheck.too_slow,),
    )
    settings.register_profile("dev", max_examples=25, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.analysis.ablations import aquamodem_signal_matrices
from repro.channel.multipath import MultipathChannel, random_sparse_channel
from repro.dsp.signal_matrix import SignalMatrices, build_signal_matrices
from repro.dsp.sampling import upsample_chips
from repro.dsp.spreading import composite_waveform_set
from repro.modem.config import AquaModemConfig


@pytest.fixture(scope="session")
def aquamodem_config() -> AquaModemConfig:
    """The paper's Table 1 configuration."""
    return AquaModemConfig()


@pytest.fixture(scope="session")
def aquamodem_matrices() -> SignalMatrices:
    """The full 224 x 112 S/A/a matrices of the AquaModem pilot waveform."""
    return aquamodem_signal_matrices()


@pytest.fixture(scope="session")
def small_matrices() -> SignalMatrices:
    """A reduced geometry (4 symbols x 3 chips, 24 x 12 S matrix) for fast tests."""
    config = AquaModemConfig(walsh_symbols=4, spreading_chips=3)
    chips = composite_waveform_set(config.walsh_symbols, config.spreading_chips)[0]
    waveform = upsample_chips(chips, config.samples_per_chip).astype(np.float64)
    return build_signal_matrices(waveform)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def sparse_channel(rng: np.random.Generator) -> MultipathChannel:
    """A 3-path channel within the AquaModem delay grid."""
    return random_sparse_channel(num_paths=3, max_delay=100, rng=rng, min_separation=5)
