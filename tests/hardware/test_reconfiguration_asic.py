"""Unit tests for the reconfiguration-energy and ASIC extension models."""

from __future__ import annotations

import pytest

from repro.hardware.asic import ASICImplementation, ASICModel, cost_crossover_volume
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.hardware.fpga import FPGAImplementation
from repro.hardware.processors import ProcessorImplementation, microblaze_soft_core, ti_c6713
from repro.hardware.reconfiguration import (
    ReconfigurationModel,
    amortized_energy_per_estimation,
    break_even_estimations,
)


@pytest.fixture(scope="module")
def best_fpga() -> FPGAImplementation:
    return FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=112, word_length=8)


class TestReconfigurationModel:
    def test_configuration_time_and_energy(self):
        model = ReconfigurationModel(VIRTEX4_XC4VSX55)
        # 22.7 Mbit at 50 Mbit/s -> ~0.45 s
        assert model.configuration_time_s == pytest.approx(0.454, rel=0.01)
        expected_power = VIRTEX4_XC4VSX55.quiescent_power_w + 0.35
        assert model.configuration_energy_j == pytest.approx(
            expected_power * model.configuration_time_s
        )

    def test_spartan3_cheaper_to_configure(self):
        v4 = ReconfigurationModel(VIRTEX4_XC4VSX55)
        s3 = ReconfigurationModel(SPARTAN3_XC3S5000)
        assert s3.configuration_energy_j < v4.configuration_energy_j

    def test_explicit_bitstream_override(self):
        model = ReconfigurationModel(VIRTEX4_XC4VSX55, bitstream_bits=10e6)
        assert model.effective_bitstream_bits == 10e6

    def test_amortization_decreases_with_burst_length(self, best_fpga):
        model = ReconfigurationModel(VIRTEX4_XC4VSX55)
        energy = best_fpga.energy.energy_j
        few = amortized_energy_per_estimation(energy, model, 10)
        many = amortized_energy_per_estimation(energy, model, 10_000)
        assert few > many > energy

    def test_break_even_against_dsp_and_microblaze(self, best_fpga):
        """Quantifies the paper's stated exclusion of reconfiguration energy.

        The fully parallel core only beats the DSP *per estimation* once the
        node performs on the order of a thousand estimations per power-up —
        i.e. stays configured for tens of seconds of continuous listening.
        """
        model = ReconfigurationModel(VIRTEX4_XC4VSX55)
        fpga_energy = best_fpga.energy.energy_j
        dsp_energy = ProcessorImplementation(ti_c6713()).energy.energy_j
        microblaze_energy = ProcessorImplementation(microblaze_soft_core()).energy.energy_j
        n_dsp = break_even_estimations(fpga_energy, dsp_energy, model)
        n_mb = break_even_estimations(fpga_energy, microblaze_energy, model)
        assert 100 < n_dsp < 10_000
        assert n_mb < n_dsp  # the microcontroller is easier to beat
        # and after break-even the amortised energy is indeed below the competitor's
        assert amortized_energy_per_estimation(fpga_energy, model, n_dsp) <= dsp_energy

    def test_break_even_impossible_case(self):
        model = ReconfigurationModel(VIRTEX4_XC4VSX55)
        with pytest.raises(ValueError):
            break_even_estimations(1e-3, 1e-6, model)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReconfigurationModel(VIRTEX4_XC4VSX55, configuration_throughput_bps=0.0)
        with pytest.raises(ValueError):
            amortized_energy_per_estimation(1e-6, ReconfigurationModel(VIRTEX4_XC4VSX55), 0)


class TestASICModel:
    def test_asic_beats_fpga_on_energy(self, best_fpga):
        asic = ASICImplementation(best_fpga)
        assert asic.energy.energy_uj < best_fpga.energy.energy_uj
        # an order of magnitude or more, per the Kuon & Rose style gap
        assert best_fpga.energy.energy_uj / asic.energy.energy_uj > 5.0

    def test_asic_is_faster(self, best_fpga):
        asic = ASICImplementation(best_fpga)
        assert asic.execution_time_s < best_fpga.timing.execution_time_s
        assert asic.clock_frequency_hz == pytest.approx(
            best_fpga.timing.clock_frequency_hz * 3.5
        )

    def test_label(self, best_fpga):
        assert ASICImplementation(best_fpga).label == "ASIC (112FC 8bit)"

    def test_unit_cost_amortizes_nre(self, best_fpga):
        asic = ASICImplementation(best_fpga)
        assert asic.unit_cost_usd(100) > asic.unit_cost_usd(100_000)
        assert asic.unit_cost_usd(10**9) == pytest.approx(asic.model.unit_cost_usd, rel=1e-3)

    def test_cost_crossover_far_beyond_sensor_net_scale(self, best_fpga):
        """The paper's point: ASICs only pay off at volumes far above 10s-100s of nodes."""
        asic = ASICImplementation(best_fpga)
        crossover = cost_crossover_volume(asic, fpga_unit_cost_usd=150.0)
        assert crossover > 1_000

    def test_crossover_requires_cheaper_marginal_cost(self, best_fpga):
        asic = ASICImplementation(best_fpga, ASICModel(unit_cost_usd=200.0))
        with pytest.raises(ValueError):
            cost_crossover_volume(asic, fpga_unit_cost_usd=150.0)

    def test_custom_model_parameters(self, best_fpga):
        aggressive = ASICImplementation(best_fpga, ASICModel(dynamic_power_ratio=20.0))
        conservative = ASICImplementation(best_fpga, ASICModel(dynamic_power_ratio=5.0))
        assert aggressive.energy.energy_uj < conservative.energy.energy_uj

    def test_model_validation(self):
        with pytest.raises(ValueError):
            ASICModel(dynamic_power_ratio=0.0)
        with pytest.raises(ValueError):
            ASICModel(clock_speedup=-1.0)
