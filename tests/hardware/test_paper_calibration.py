"""Calibration tests: the hardware models against every number the paper prints.

These are the tests that pin the substitution described in DESIGN.md §2: since
we cannot run Xilinx ISE / XPower / TI's estimator, the analytical models must
reproduce the published Table 2, Table 3 and Figure 6 values within tight
tolerances, so that the benchmark harness regenerates the paper's results
rather than arbitrary numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis import paper_data
from repro.hardware.area import estimate_area
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.hardware.energy import estimate_energy
from repro.hardware.fpga import FPGAImplementation
from repro.hardware.power import estimate_power
from repro.hardware.processors import ProcessorImplementation, microblaze_soft_core, ti_c6713
from repro.hardware.timing import estimate_timing

_DEVICES = {"Virtex-4": VIRTEX4_XC4VSX55, "Spartan-3": SPARTAN3_XC3S5000}


class TestTable2Calibration:
    @pytest.mark.parametrize("key", sorted(paper_data.TABLE2_ROWS))
    def test_area_exact(self, key):
        bits, blocks, family = key
        paper_slices, _, _ = paper_data.TABLE2_ROWS[key]
        area = estimate_area(_DEVICES[family], blocks, bits)
        assert area.slices == paper_slices

    @pytest.mark.parametrize("key", sorted(paper_data.TABLE2_ROWS))
    def test_timing_within_half_percent(self, key):
        bits, blocks, family = key
        _, paper_time_us, _ = paper_data.TABLE2_ROWS[key]
        timing = estimate_timing(_DEVICES[family], blocks, bits, num_paths=6)
        assert timing.execution_time_us == pytest.approx(paper_time_us, rel=0.005)

    @pytest.mark.parametrize("key", sorted(paper_data.TABLE2_ROWS))
    def test_throughput_consistent_with_timing(self, key):
        bits, blocks, family = key
        _, _, paper_throughput = paper_data.TABLE2_ROWS[key]
        timing = estimate_timing(_DEVICES[family], blocks, bits, num_paths=6)
        # the paper rounds throughput to three decimals; allow that rounding
        assert timing.throughput_per_us == pytest.approx(paper_throughput, abs=6e-4)


class TestFigure6Calibration:
    def test_quiescent_powers(self):
        assert VIRTEX4_XC4VSX55.quiescent_power_w == pytest.approx(
            paper_data.FIGURE6_QUIESCENT_POWER_W["Virtex-4"]
        )
        assert SPARTAN3_XC3S5000.quiescent_power_w == pytest.approx(
            paper_data.FIGURE6_QUIESCENT_POWER_W["Spartan-3"]
        )

    @pytest.mark.parametrize(
        "family, blocks, bits, paper_power, paper_energy",
        [
            ("Virtex-4", 112, 8, 2.40, 9.50),
            ("Spartan-3", 14, 8, 0.53, 25.82),
            ("Virtex-4", 1, 16, 0.74, 360.52),
            ("Spartan-3", 1, 16, 0.35, 260.92),
        ],
    )
    def test_published_power_energy_anchors(self, family, blocks, bits, paper_power, paper_energy):
        device = _DEVICES[family]
        area = estimate_area(device, blocks, bits)
        timing = estimate_timing(device, blocks, bits)
        power = estimate_power(device, area, timing.clock_frequency_hz)
        energy = estimate_energy(power, timing)
        assert power.total_power_w == pytest.approx(paper_power, rel=0.04)
        assert energy.energy_uj == pytest.approx(paper_energy, rel=0.04)


class TestTable3Calibration:
    def test_fully_parallel_design_requires_224_dsp48(self):
        area = estimate_area(VIRTEX4_XC4VSX55, 112, 8)
        assert area.dsp48 == paper_data.FULLY_PARALLEL_DSP48_REQUIRED

    def test_dsp_row(self):
        paper_time, paper_power, paper_energy, _, _ = paper_data.TABLE3_ROWS["DSP 32bit"]
        impl = ProcessorImplementation(ti_c6713())
        assert impl.execution_time_us == pytest.approx(paper_time, rel=0.02)
        assert impl.power_w == pytest.approx(paper_power, rel=0.01)
        assert impl.energy.energy_uj == pytest.approx(paper_energy, rel=0.02)

    def test_microblaze_row_energy(self):
        paper_time, _, paper_energy, _, _ = paper_data.TABLE3_ROWS["MicroBlaze 32bit"]
        impl = ProcessorImplementation(microblaze_soft_core())
        assert impl.execution_time_us == pytest.approx(paper_time, rel=0.02)
        assert impl.energy.energy_uj == pytest.approx(paper_energy, rel=0.02)

    def test_microblaze_paper_inconsistency_documented(self):
        """Table 3 prints 0.38 W but energy/time implies ~0.3155 W; we calibrate to energy."""
        paper_time, paper_power, paper_energy, _, _ = paper_data.TABLE3_ROWS["MicroBlaze 32bit"]
        assert paper_power * paper_time != pytest.approx(paper_energy, rel=0.05)
        assert paper_energy / paper_time == pytest.approx(0.3155, rel=0.01)

    def test_headline_ratios(self):
        """210.57x vs the microcontroller and 52.71x vs the DSP for the best FPGA design."""
        fpga = FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=112, word_length=8)
        microblaze = ProcessorImplementation(microblaze_soft_core())
        dsp = ProcessorImplementation(ti_c6713())
        vs_mb = microblaze.energy.energy_uj / fpga.energy.energy_uj
        vs_dsp = dsp.energy.energy_uj / fpga.energy.energy_uj
        assert vs_mb == pytest.approx(
            paper_data.HEADLINE_ENERGY_DECREASE["vs_microcontroller"], rel=0.05
        )
        assert vs_dsp == pytest.approx(paper_data.HEADLINE_ENERGY_DECREASE["vs_dsp"], rel=0.05)

    @pytest.mark.parametrize(
        "family, blocks, bits, label",
        [
            ("Virtex-4", 1, 16, "Virtex-4 1FC 16bit"),
            ("Spartan-3", 1, 16, "Spartan-3 1FC 16bit"),
            ("Virtex-4", 112, 8, "Virtex-4 112FC 8bit"),
            ("Spartan-3", 14, 8, "Spartan-3 14FC 8bit"),
        ],
    )
    def test_fpga_rows(self, family, blocks, bits, label):
        paper_time, paper_power, paper_energy, _, _ = paper_data.TABLE3_ROWS[label]
        impl = FPGAImplementation(_DEVICES[family], num_fc_blocks=blocks, word_length=bits)
        assert impl.timing.execution_time_us == pytest.approx(paper_time, rel=0.01)
        assert impl.power.total_power_w == pytest.approx(paper_power, rel=0.04)
        assert impl.energy.energy_uj == pytest.approx(paper_energy, rel=0.04)
