"""Unit tests for the MP operation-count model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hardware.opcounts import matching_pursuit_operation_counts


class TestOperationCounts:
    def test_aquamodem_matched_filter_dominates(self):
        ops = matching_pursuit_operation_counts(112, 224, 6)
        # matched filter alone: 2 * 112 * 224 = 50176 multiplies
        assert ops.multiplies == 50176 + 6 * 6 * 112
        assert ops.additions == 50176 + 6 * 3 * 112
        assert ops.comparisons == 6 * 112
        assert ops.inner_loop_iterations == 112 * 224 + 6 * 112

    def test_totals_and_helpers(self):
        ops = matching_pursuit_operation_counts(4, 8, 2)
        assert ops.arithmetic_operations == ops.multiplies + ops.additions
        assert ops.total_operations == (
            ops.multiplies + ops.additions + ops.comparisons + ops.memory_accesses
        )

    def test_scaled(self):
        ops = matching_pursuit_operation_counts(4, 8, 2)
        doubled = ops.scaled(2)
        assert doubled.multiplies == 2 * ops.multiplies
        assert doubled.inner_loop_iterations == 2 * ops.inner_loop_iterations

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            matching_pursuit_operation_counts(4, 8, 2).scaled(-1)

    def test_linear_in_num_paths_beyond_matched_filter(self):
        base = matching_pursuit_operation_counts(112, 224, 1)
        more = matching_pursuit_operation_counts(112, 224, 7)
        assert more.comparisons == 7 * base.comparisons
        assert (more.multiplies - 50176) == 7 * (base.multiplies - 50176)

    @given(
        d=st.integers(min_value=1, max_value=256),
        w=st.integers(min_value=1, max_value=512),
        nf=st.integers(min_value=1, max_value=16),
    )
    def test_counts_positive_and_monotone_property(self, d, w, nf):
        ops = matching_pursuit_operation_counts(d, w, nf)
        assert ops.multiplies > 0 and ops.additions > 0
        bigger = matching_pursuit_operation_counts(d, w, nf + 1)
        assert bigger.multiplies > ops.multiplies
        assert bigger.total_operations > ops.total_operations

    def test_validation(self):
        with pytest.raises(ValueError):
            matching_pursuit_operation_counts(0, 224, 6)
