"""Unit tests for the FPGA timing model."""

from __future__ import annotations

import pytest

from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.hardware.timing import estimate_timing, max_clock_frequency, timing_from_schedule


class TestTimingModel:
    @pytest.mark.parametrize(
        "device, blocks, bits, expected_us",
        [
            (VIRTEX4_XC4VSX55, 112, 8, 3.95),
            (VIRTEX4_XC4VSX55, 14, 8, 31.63),
            (VIRTEX4_XC4VSX55, 1, 8, 442.80),
            (SPARTAN3_XC3S5000, 14, 8, 48.94),
            (SPARTAN3_XC3S5000, 1, 8, 685.17),
            (VIRTEX4_XC4VSX55, 112, 12, 4.10),
            (VIRTEX4_XC4VSX55, 1, 12, 459.65),
            (SPARTAN3_XC3S5000, 14, 12, 49.85),
            (VIRTEX4_XC4VSX55, 112, 16, 4.32),
            (VIRTEX4_XC4VSX55, 14, 16, 34.59),
            (SPARTAN3_XC3S5000, 1, 16, 737.07),
        ],
    )
    def test_table2_timing_within_half_percent(self, device, blocks, bits, expected_us):
        timing = estimate_timing(device, blocks, bits, num_paths=6)
        assert timing.execution_time_us == pytest.approx(expected_us, rel=0.005)

    def test_timing_from_schedule_matches_estimate_timing(self):
        """Pricing a closed-form schedule equals building it from the geometry,
        so the batched IP-core engine's shared schedule prices a whole batch."""
        from repro.core.ipcore.control import ControlUnit

        for blocks, bits in ((1, 8), (14, 12), (112, 16)):
            schedule = ControlUnit(112, 224, blocks, 6).schedule()
            direct = timing_from_schedule(VIRTEX4_XC4VSX55, schedule, bits)
            assert direct == estimate_timing(VIRTEX4_XC4VSX55, blocks, bits, num_paths=6)
            assert direct.cycles == schedule.total_cycles

    def test_timing_scales_as_inverse_parallelism(self):
        t1 = estimate_timing(VIRTEX4_XC4VSX55, 1, 8).execution_time_s
        t14 = estimate_timing(VIRTEX4_XC4VSX55, 14, 8).execution_time_s
        t112 = estimate_timing(VIRTEX4_XC4VSX55, 112, 8).execution_time_s
        assert t1 / t112 == pytest.approx(112.0, rel=1e-6)
        assert t1 / t14 == pytest.approx(14.0, rel=1e-6)
        assert t14 / t112 == pytest.approx(8.0, rel=1e-6)

    def test_throughput_definition(self):
        timing = estimate_timing(VIRTEX4_XC4VSX55, 112, 8)
        assert timing.throughput_hz == pytest.approx(
            timing.clock_frequency_hz / timing.cycles
        )
        assert timing.throughput_per_us == pytest.approx(0.253, rel=0.01)

    def test_every_paper_point_meets_the_22ms_deadline(self):
        for device in (VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000):
            for blocks in (1, 14):
                for bits in (8, 12, 16):
                    assert estimate_timing(device, blocks, bits).meets_deadline(22.4e-3)

    def test_more_paths_takes_longer(self):
        t6 = estimate_timing(VIRTEX4_XC4VSX55, 112, 8, num_paths=6).execution_time_s
        t12 = estimate_timing(VIRTEX4_XC4VSX55, 112, 8, num_paths=12).execution_time_s
        assert t12 > t6

    def test_control_override_plumbs_through(self):
        base = estimate_timing(VIRTEX4_XC4VSX55, 112, 8).cycles
        slower = estimate_timing(
            VIRTEX4_XC4VSX55, 112, 8, qgen_cycles_per_iteration=7
        ).cycles
        assert slower == base + 42

    def test_max_clock_frequency_helper(self):
        assert max_clock_frequency(VIRTEX4_XC4VSX55, 8) == pytest.approx(62.75e6)
