"""Unit tests for the FPGA device database."""

from __future__ import annotations

import pytest

from repro.hardware.devices import (
    DEVICE_LIBRARY,
    FPGADevice,
    SPARTAN3_XC3S5000,
    VIRTEX4_XC4VSX55,
    get_device,
)


class TestDeviceDatabase:
    def test_paper_devices_present(self):
        assert "xc4vsx55" in DEVICE_LIBRARY
        assert "xc3s5000" in DEVICE_LIBRARY

    def test_get_device_case_insensitive(self):
        assert get_device("XC4VSX55") is VIRTEX4_XC4VSX55
        assert get_device("xc3s5000") is SPARTAN3_XC3S5000

    def test_get_device_unknown(self):
        with pytest.raises(KeyError):
            get_device("xc7z020")

    def test_paper_resource_counts(self):
        # the paper: Virtex-4 has 512 DSP48s, Spartan-3 has 104
        assert VIRTEX4_XC4VSX55.dsp48 == 512
        assert SPARTAN3_XC3S5000.dsp48 == 104

    def test_paper_quiescent_power(self):
        assert VIRTEX4_XC4VSX55.quiescent_power_w == pytest.approx(0.723)
        assert SPARTAN3_XC3S5000.quiescent_power_w == pytest.approx(0.335)

    def test_both_are_90nm(self):
        assert VIRTEX4_XC4VSX55.technology_nm == 90
        assert SPARTAN3_XC3S5000.technology_nm == 90


class TestClockCalibration:
    def test_calibrated_frequencies(self):
        assert VIRTEX4_XC4VSX55.max_clock_hz(8) == pytest.approx(62.75e6)
        assert VIRTEX4_XC4VSX55.max_clock_hz(16) == pytest.approx(57.39e6)
        assert SPARTAN3_XC3S5000.max_clock_hz(8) == pytest.approx(40.54e6)

    def test_clock_decreases_with_word_length(self):
        for device in (VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000):
            clocks = [device.max_clock_hz(b) for b in (8, 10, 12, 14, 16, 20)]
            assert clocks == sorted(clocks, reverse=True)

    def test_virtex4_faster_than_spartan3(self):
        for bits in (8, 12, 16):
            assert VIRTEX4_XC4VSX55.max_clock_hz(bits) > SPARTAN3_XC3S5000.max_clock_hz(bits)

    def test_interpolation_between_calibration_points(self):
        f10 = VIRTEX4_XC4VSX55.max_clock_hz(10)
        assert VIRTEX4_XC4VSX55.max_clock_hz(12) < f10 < VIRTEX4_XC4VSX55.max_clock_hz(8)

    def test_word_length_validated(self):
        with pytest.raises(ValueError):
            VIRTEX4_XC4VSX55.max_clock_hz(1)


class TestAreaCalibration:
    def test_calibrated_slices_per_fc(self):
        assert VIRTEX4_XC4VSX55.fc_block_slices(8) == pytest.approx(102.75)
        assert VIRTEX4_XC4VSX55.fc_block_slices(16) == pytest.approx(198.75)
        assert SPARTAN3_XC3S5000.fc_block_slices(8) == pytest.approx(135.5)

    def test_slices_grow_with_word_length(self):
        for device in (VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000):
            sizes = [device.fc_block_slices(b) for b in (6, 8, 12, 16, 20)]
            assert sizes == sorted(sizes)

    def test_spartan3_fc_block_larger_than_virtex4(self):
        # the Spartan-3 has no DSP48 adders, so more fabric is used per block
        for bits in (8, 12, 16):
            assert SPARTAN3_XC3S5000.fc_block_slices(bits) > VIRTEX4_XC4VSX55.fc_block_slices(bits)


class TestDeviceValidation:
    def test_empty_calibration_rejected(self):
        with pytest.raises(ValueError):
            FPGADevice(
                name="bad", family="X", technology_nm=90, slices=10, dsp48=1,
                bram_blocks=1, bram_kbits=18.0, quiescent_power_w=0.1,
                dynamic_power_per_slice_hz=1e-12,
                slices_per_fc_block={}, clock_frequency_hz={8: 1e6},
            )

    def test_bram_bits(self):
        assert VIRTEX4_XC4VSX55.bram_bits == pytest.approx(320 * 18 * 1024)
