"""Unit tests for the Table 3 platform comparison."""

from __future__ import annotations

import pytest

from repro.hardware.comparison import compare_platforms, default_fpga_design_points
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.hardware.fpga import FPGAImplementation


class TestDefaultDesignPoints:
    def test_four_points_matching_table3(self):
        points = default_fpga_design_points()
        labels = [p.label for p in points]
        assert "Virtex-4 1FC 16bit" in labels
        assert "Spartan-3 1FC 16bit" in labels
        assert "Virtex-4 112FC 8bit" in labels
        assert "Spartan-3 14FC 8bit" in labels


class TestComparePlatforms:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_platforms()

    def test_six_rows(self, comparison):
        assert len(comparison.results) == 6

    def test_baseline_ratios_are_unity(self, comparison):
        microblaze = comparison.by_label("MicroBlaze")
        dsp = comparison.by_label("C6713")
        assert microblaze.energy_decrease_vs_microcontroller == pytest.approx(1.0)
        assert dsp.energy_decrease_vs_dsp == pytest.approx(1.0)

    def test_headline_ratios_match_paper(self, comparison):
        """The paper's headline: 210X vs the microcontroller, 52X vs the DSP."""
        best = comparison.by_label("112FC")
        assert best.energy_decrease_vs_microcontroller == pytest.approx(210.57, rel=0.05)
        assert best.energy_decrease_vs_dsp == pytest.approx(52.71, rel=0.05)

    def test_spartan3_parallel_ratios_match_paper(self, comparison):
        spartan = comparison.by_label("Spartan-3 14FC")
        assert spartan.energy_decrease_vs_microcontroller == pytest.approx(77.47, rel=0.05)
        assert spartan.energy_decrease_vs_dsp == pytest.approx(19.39, rel=0.05)

    def test_every_fpga_point_beats_both_baselines(self, comparison):
        """Section VI: every reconfigurable design saves energy over the DSP and uC."""
        for result in comparison.results:
            if "FC" in result.label:
                assert result.energy_decrease_vs_microcontroller > 1.0
                assert result.energy_decrease_vs_dsp > 1.0

    def test_best_energy_is_fully_parallel_virtex4(self, comparison):
        assert "112FC" in comparison.best_energy().label

    def test_render_contains_all_rows(self, comparison):
        text = comparison.render()
        for result in comparison.results:
            assert result.label in text

    def test_unknown_label_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.by_label("GPU")

    def test_infeasible_designs_excluded(self):
        infeasible = FPGAImplementation(SPARTAN3_XC3S5000, num_fc_blocks=112, word_length=8)
        comparison = compare_platforms(fpga_designs=[infeasible])
        assert len(comparison.results) == 2  # only the two processor baselines

    def test_custom_design_list(self):
        designs = [FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=28, word_length=12)]
        comparison = compare_platforms(fpga_designs=designs)
        assert len(comparison.results) == 3
        assert comparison.results[-1].energy_decrease_vs_dsp > 1.0
