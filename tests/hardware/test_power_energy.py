"""Unit tests for the FPGA power and energy models."""

from __future__ import annotations

import pytest

from repro.hardware.area import estimate_area
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.hardware.energy import duty_cycled_average_power, estimate_energy
from repro.hardware.power import estimate_power
from repro.hardware.timing import estimate_timing


class TestPowerModel:
    def test_quiescent_floor(self):
        power = estimate_power(VIRTEX4_XC4VSX55, 0, 62.75e6)
        assert power.total_power_w == pytest.approx(0.723)
        assert power.dynamic_fraction == 0.0

    def test_dynamic_power_proportional_to_slices(self):
        p1 = estimate_power(VIRTEX4_XC4VSX55, 1000, 62.75e6).dynamic_power_w
        p2 = estimate_power(VIRTEX4_XC4VSX55, 2000, 62.75e6).dynamic_power_w
        assert p2 == pytest.approx(2 * p1)

    def test_dynamic_power_proportional_to_clock(self):
        p1 = estimate_power(VIRTEX4_XC4VSX55, 1000, 30e6).dynamic_power_w
        p2 = estimate_power(VIRTEX4_XC4VSX55, 1000, 60e6).dynamic_power_w
        assert p2 == pytest.approx(2 * p1)

    def test_activity_factor_scales_dynamic_only(self):
        full = estimate_power(VIRTEX4_XC4VSX55, 1000, 60e6, activity_factor=1.0)
        half = estimate_power(VIRTEX4_XC4VSX55, 1000, 60e6, activity_factor=0.5)
        assert half.dynamic_power_w == pytest.approx(full.dynamic_power_w / 2)
        assert half.quiescent_power_w == full.quiescent_power_w

    def test_accepts_area_estimate_object(self):
        area = estimate_area(VIRTEX4_XC4VSX55, 112, 8)
        power = estimate_power(VIRTEX4_XC4VSX55, area, 62.75e6)
        assert power.total_power_w == pytest.approx(2.40, rel=0.01)

    def test_table3_power_anchors(self):
        cases = [
            (VIRTEX4_XC4VSX55, 112, 8, 2.40),
            (SPARTAN3_XC3S5000, 14, 8, 0.53),
            (VIRTEX4_XC4VSX55, 1, 16, 0.74),
            (SPARTAN3_XC3S5000, 1, 16, 0.35),
        ]
        for device, blocks, bits, expected in cases:
            area = estimate_area(device, blocks, bits)
            timing = estimate_timing(device, blocks, bits)
            power = estimate_power(device, area, timing.clock_frequency_hz)
            assert power.total_power_w == pytest.approx(expected, rel=0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_power(VIRTEX4_XC4VSX55, 100, 0.0)
        with pytest.raises(ValueError):
            estimate_power(VIRTEX4_XC4VSX55, 100, 1e6, activity_factor=-1.0)


class TestEnergyModel:
    def test_energy_is_power_times_time(self):
        energy = estimate_energy(2.0, 1e-3)
        assert energy.energy_j == pytest.approx(2e-3)
        assert energy.energy_uj == pytest.approx(2000.0)

    def test_accepts_estimate_objects(self):
        area = estimate_area(VIRTEX4_XC4VSX55, 112, 8)
        timing = estimate_timing(VIRTEX4_XC4VSX55, 112, 8)
        power = estimate_power(VIRTEX4_XC4VSX55, area, timing.clock_frequency_hz)
        energy = estimate_energy(power, timing)
        assert energy.energy_uj == pytest.approx(9.5, rel=0.02)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            estimate_energy(-1.0, 1.0)
        with pytest.raises(ValueError):
            estimate_energy(1.0, -1.0)


class TestDutyCycledAveragePower:
    def test_zero_rate_is_idle_power(self):
        assert duty_cycled_average_power(1e-3, 0.0, idle_power_w=0.05) == pytest.approx(0.05)

    def test_linear_in_rate(self):
        p1 = duty_cycled_average_power(1e-3, 10.0)
        p2 = duty_cycled_average_power(1e-3, 20.0)
        assert p2 == pytest.approx(2 * p1)

    def test_platform_ranking_preserved(self):
        """Processing energy per estimation dominates the average listening power
        when estimating continuously (one estimation per 22.4 ms frame)."""
        rate = 1.0 / 22.4e-3
        microblaze = duty_cycled_average_power(2000.40e-6, rate)
        dsp = duty_cycled_average_power(500.76e-6, rate)
        fpga = duty_cycled_average_power(9.50e-6, rate)
        assert microblaze > dsp > fpga
        assert microblaze / fpga == pytest.approx(210.6, rel=0.01)
