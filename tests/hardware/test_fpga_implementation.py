"""Unit tests for the FPGAImplementation design-point wrapper."""

from __future__ import annotations

import pytest

from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.hardware.fpga import FPGAImplementation


class TestFPGAImplementation:
    def test_headline_design_point(self):
        impl = FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=112, word_length=8)
        assert impl.is_feasible
        assert impl.area.slices == 11508
        assert impl.timing.execution_time_us == pytest.approx(3.95, rel=0.005)
        assert impl.power.total_power_w == pytest.approx(2.40, rel=0.02)
        assert impl.energy.energy_uj == pytest.approx(9.5, rel=0.02)

    def test_label(self):
        impl = FPGAImplementation(SPARTAN3_XC3S5000, num_fc_blocks=14, word_length=8)
        assert impl.label == "Spartan-3 14FC 8bit"

    def test_report_row_keys(self):
        impl = FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=14, word_length=12)
        row = impl.report_row()
        for key in ("device", "slices", "time_us", "power_w", "energy_uj", "feasible"):
            assert key in row

    def test_models_are_cached(self):
        impl = FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=14, word_length=12)
        assert impl.area is impl.area
        assert impl.timing is impl.timing
        assert impl.power is impl.power
        assert impl.energy is impl.energy

    def test_infeasible_point_flagged(self):
        impl = FPGAImplementation(SPARTAN3_XC3S5000, num_fc_blocks=112, word_length=8)
        assert not impl.is_feasible
        assert not impl.report_row()["feasible"]

    def test_validation(self):
        with pytest.raises(ValueError):
            FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=13, word_length=8)
        with pytest.raises(ValueError):
            FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=14, word_length=1)

    def test_control_overrides_affect_timing(self):
        base = FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=112, word_length=8)
        slower = FPGAImplementation(
            VIRTEX4_XC4VSX55, num_fc_blocks=112, word_length=8,
            control_overrides={"qgen_cycles_per_iteration": 10},
        )
        assert slower.timing.cycles > base.timing.cycles
