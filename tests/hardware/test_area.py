"""Unit tests for the FPGA area model."""

from __future__ import annotations

import pytest

from repro.hardware.area import DSP48_PER_FC_BLOCK, estimate_area, is_feasible
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX25, VIRTEX4_XC4VSX55


class TestSliceModel:
    @pytest.mark.parametrize(
        "bits, blocks, expected",
        [
            (8, 112, 11508), (8, 14, 1439), (8, 1, 103),
            (12, 112, 16884), (12, 14, 2111), (12, 1, 151),
            (16, 112, 22260), (16, 14, 2783), (16, 1, 199),
        ],
    )
    def test_virtex4_table2_slices_exact(self, bits, blocks, expected):
        area = estimate_area(VIRTEX4_XC4VSX55, blocks, bits)
        assert area.slices == expected

    @pytest.mark.parametrize(
        "bits, blocks, expected",
        [
            (8, 14, 1897), (8, 1, 136),
            (12, 14, 2783), (12, 1, 199),
            (16, 14, 3665), (16, 1, 262),
        ],
    )
    def test_spartan3_table2_slices_exact(self, bits, blocks, expected):
        area = estimate_area(SPARTAN3_XC3S5000, blocks, bits)
        assert area.slices == expected

    def test_slices_scale_roughly_linearly_with_parallelism(self):
        a1 = estimate_area(VIRTEX4_XC4VSX55, 1, 8).slices
        a56 = estimate_area(VIRTEX4_XC4VSX55, 56, 8).slices
        assert a56 == pytest.approx(56 * a1, rel=0.01)


class TestDsp48Model:
    def test_two_per_fc_block(self):
        assert DSP48_PER_FC_BLOCK == 2
        assert estimate_area(VIRTEX4_XC4VSX55, 112, 8).dsp48 == 224
        assert estimate_area(VIRTEX4_XC4VSX55, 1, 8).dsp48 == 2

    def test_fully_parallel_spartan3_infeasible(self):
        """The paper: the 112-block design needs 224 DSP48s; the Spartan-3 has 104."""
        area = estimate_area(SPARTAN3_XC3S5000, 112, 8)
        assert not area.feasible
        assert "dsp48" in area.limiting_resources
        assert not is_feasible(SPARTAN3_XC3S5000, 112, 8)

    def test_fully_parallel_virtex4_feasible(self):
        assert is_feasible(VIRTEX4_XC4VSX55, 112, 8)
        assert is_feasible(VIRTEX4_XC4VSX55, 112, 16)

    def test_largest_feasible_spartan3_parallelism(self):
        # 2 DSP48 per block and 104 available -> up to 52 blocks; among the
        # divisors of 112 that means 28 blocks.
        assert is_feasible(SPARTAN3_XC3S5000, 28, 8)
        assert not is_feasible(SPARTAN3_XC3S5000, 56, 8)

    def test_smaller_virtex4_part_runs_out_of_dsp48(self):
        assert not is_feasible(VIRTEX4_XC4VSX25, 112, 8)
        assert is_feasible(VIRTEX4_XC4VSX25, 56, 8)


class TestBramAndStorage:
    def test_storage_bits_match_section_ivc(self):
        """Section IV.C: storing S, A and a at 32 bits takes ~1208 kbit."""
        area = estimate_area(VIRTEX4_XC4VSX55, 1, 32)
        assert area.storage_bits == pytest.approx(1208e3, rel=0.01)

    def test_storage_scales_with_word_length(self):
        a8 = estimate_area(VIRTEX4_XC4VSX55, 14, 8).storage_bits
        a16 = estimate_area(VIRTEX4_XC4VSX55, 14, 16).storage_bits
        assert a16 == 2 * a8

    def test_bram_at_least_one_per_block(self):
        area = estimate_area(VIRTEX4_XC4VSX55, 112, 8)
        assert area.bram_blocks >= 112

    def test_bram_capacity_bound(self):
        area = estimate_area(VIRTEX4_XC4VSX55, 1, 32)
        # 1208 kbit / 18 kbit blocks -> at least 66 blocks even for one FC block
        assert area.bram_blocks >= 66


class TestValidation:
    def test_non_divisor_blocks_rejected(self):
        with pytest.raises(ValueError):
            estimate_area(VIRTEX4_XC4VSX55, 13, 8)

    def test_word_length_bounds(self):
        with pytest.raises(ValueError):
            estimate_area(VIRTEX4_XC4VSX55, 1, 1)
