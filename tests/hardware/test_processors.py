"""Unit tests for the DSP and MicroBlaze processor models."""

from __future__ import annotations

import pytest

from repro.hardware.opcounts import matching_pursuit_operation_counts
from repro.hardware.processors import (
    ProcessorImplementation,
    ProcessorModel,
    microblaze_soft_core,
    ti_c6713,
)


class TestProcessorModel:
    def test_cycles_sum_components(self):
        model = ProcessorModel(
            name="toy", clock_hz=1e6,
            cycles_per_multiply=2.0, cycles_per_addition=1.0,
            cycles_per_comparison=1.0, cycles_per_memory_access=1.0,
            cycles_per_loop_iteration=1.0, active_power_w=1.0,
        )
        ops = matching_pursuit_operation_counts(2, 4, 1)
        expected = (
            2.0 * ops.multiplies + ops.additions + ops.comparisons
            + ops.memory_accesses + ops.inner_loop_iterations
        )
        assert model.cycles(ops) == pytest.approx(expected)
        assert model.execution_time_s(ops) == pytest.approx(expected / 1e6)

    def test_energy_uses_active_power(self):
        model = ti_c6713()
        ops = matching_pursuit_operation_counts()
        energy = model.energy(ops)
        assert energy.energy_j == pytest.approx(model.active_power_w * model.execution_time_s(ops))

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorModel(
                name="bad", clock_hz=0.0, cycles_per_multiply=1, cycles_per_addition=1,
                cycles_per_comparison=1, cycles_per_memory_access=1,
                cycles_per_loop_iteration=1, active_power_w=1.0,
            )
        with pytest.raises(ValueError):
            ProcessorModel(
                name="bad", clock_hz=1e6, cycles_per_multiply=-1, cycles_per_addition=1,
                cycles_per_comparison=1, cycles_per_memory_access=1,
                cycles_per_loop_iteration=1, active_power_w=1.0,
            )


class TestCalibratedBaselines:
    def test_dsp_execution_time_matches_paper(self):
        """Table 3: the C6713 takes ~468 us (78 us per coefficient x 6)."""
        impl = ProcessorImplementation(ti_c6713())
        assert impl.execution_time_us == pytest.approx(468.0, rel=0.02)
        assert impl.time_per_coefficient_us == pytest.approx(78.0, rel=0.02)

    def test_dsp_energy_matches_paper(self):
        impl = ProcessorImplementation(ti_c6713())
        assert impl.energy.energy_uj == pytest.approx(500.76, rel=0.02)
        assert impl.power_w == pytest.approx(1.07)

    def test_microblaze_execution_time_matches_paper(self):
        """Table 3: the MicroBlaze takes 6341.84 us."""
        impl = ProcessorImplementation(microblaze_soft_core())
        assert impl.execution_time_us == pytest.approx(6341.84, rel=0.02)

    def test_microblaze_energy_matches_paper(self):
        impl = ProcessorImplementation(microblaze_soft_core())
        assert impl.energy.energy_uj == pytest.approx(2000.40, rel=0.02)

    def test_microblaze_much_slower_than_dsp(self):
        """The paper attributes the MicroBlaze's energy to its very high latency."""
        mb = ProcessorImplementation(microblaze_soft_core())
        dsp = ProcessorImplementation(ti_c6713())
        assert mb.execution_time_us > 10 * dsp.execution_time_us
        assert mb.power_w < dsp.power_w          # lower power ...
        assert mb.energy.energy_uj > dsp.energy.energy_uj  # ... but higher energy

    def test_report_rows(self):
        row = ProcessorImplementation(ti_c6713()).report_row()
        assert row["platform"] == "TI C6713 DSP"
        assert row["word_length"] == 32
        assert row["time_us"] == pytest.approx(468.0, rel=0.02)

    def test_workload_scaling(self):
        """Halving the number of estimated paths roughly shaves the per-path share."""
        full = ProcessorImplementation(ti_c6713(), num_paths=6)
        half = ProcessorImplementation(ti_c6713(), num_paths=3)
        assert half.execution_time_us < full.execution_time_us
        assert half.execution_time_us > 0.5 * full.execution_time_us  # matched filter is fixed cost

    def test_labels(self):
        assert ProcessorImplementation(microblaze_soft_core()).label == "MicroBlaze 32bit"
