"""Adaptive sweeps through the service: option parsing, dispatch, artefacts."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.experiments import ResultCache, Scenario, register
from repro.experiments.adaptive import AdaptiveConfig
from repro.experiments.spec import SweepSpec
from repro.service.jobs import JobQueue, JobState
from repro.service.schemas import JobOptions, SchemaError, parse_submit_request

COIN = "service-adaptive-coin"

ADAPTIVE_OPTIONS = {
    "metric": "success", "ci_width": 0.13, "max_trials": 64,
    "min_trials": 4, "wave_trials": 8,
}


def _register_coin() -> None:
    def run_trial(params, seed):
        rng = np.random.default_rng(seed)
        return {"success": float(rng.random() < params["p"])}

    register(Scenario(
        name=COIN,
        description="Bernoulli trials for service adaptive tests (test only)",
        layers=("test",),
        version="1",
        run_trial=run_trial,
        default_spec=SweepSpec(scenario=COIN, grid={"p": (0.0, 0.5)}),
    ))


@pytest.fixture(autouse=True)
def coin_scenario():
    _register_coin()


def _wait_terminal(queue, job_id, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = queue.get(job_id)
        if job is not None and job.state in JobState.TERMINAL:
            return job
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached a terminal state")


@pytest.fixture
def queue(tmp_path):
    queue = JobQueue(tmp_path / "data", cache=ResultCache(tmp_path / "cache"),
                     max_workers=2)
    yield queue
    queue.shutdown(wait=True)


class TestOptionParsing:
    def _submit_payload(self, adaptive):
        return {
            "spec": {"scenario": COIN, "grid": {"p": [0.0, 0.5]}},
            "options": {"adaptive": adaptive},
        }

    def test_adaptive_options_parse_into_a_config(self):
        _, options = parse_submit_request(self._submit_payload(ADAPTIVE_OPTIONS))
        assert options.adaptive == AdaptiveConfig.from_dict(ADAPTIVE_OPTIONS)

    def test_adaptive_defaults_to_none(self):
        _, options = parse_submit_request(
            {"spec": {"scenario": COIN}, "options": {}}
        )
        assert options.adaptive is None
        assert options.to_dict()["adaptive"] is None

    @pytest.mark.parametrize(
        "adaptive, match",
        [
            ("tight", "options.adaptive"),
            ({"metric": "success"}, "require metric"),
            ({**ADAPTIVE_OPTIONS, "warp": 9}, "unknown adaptive option"),
            ({**ADAPTIVE_OPTIONS, "method": "wald"}, "unknown interval method"),
        ],
    )
    def test_bad_adaptive_options_are_schema_errors(self, adaptive, match):
        with pytest.raises(SchemaError, match=match):
            parse_submit_request(self._submit_payload(adaptive))

    def test_options_round_trip_through_to_dict(self):
        _, options = parse_submit_request(self._submit_payload(ADAPTIVE_OPTIONS))
        payload = options.to_dict()["adaptive"]
        assert payload["metric"] == "success"
        assert payload["ci_width"] == 0.13
        assert AdaptiveConfig.from_dict(payload) == options.adaptive


class TestAdaptiveJobs:
    def test_adaptive_job_runs_to_done_with_the_adaptive_stats_block(self, queue):
        spec = SweepSpec(scenario=COIN, grid={"p": (0.0, 0.5)})
        config = AdaptiveConfig.from_dict(ADAPTIVE_OPTIONS)
        job, _ = queue.submit(spec, JobOptions(adaptive=config))
        job = _wait_terminal(queue, job.job_id)
        assert job.state == JobState.DONE

        payload = job.to_dict()
        adaptive = payload["stats"]["adaptive"]
        assert adaptive["config"] == config.to_dict()
        assert adaptive["points_total"] == 2
        assert adaptive["waves"] >= 2
        # sequential stopping really kicked in: fewer trials than the ceiling
        assert payload["stats"]["num_trials"] < adaptive["ceiling_trials"]
        assert adaptive["points_stopped_early"] >= 1

    def test_adaptive_job_writes_the_standard_artifacts(self, queue):
        import json

        from repro.experiments.store import read_jsonl

        spec = SweepSpec(scenario=COIN, grid={"p": (0.0, 0.5)})
        config = AdaptiveConfig.from_dict(ADAPTIVE_OPTIONS)
        job, _ = queue.submit(spec, JobOptions(adaptive=config))
        job = _wait_terminal(queue, job.job_id)
        assert set(job.artifacts) >= {"jsonl", "csv", "manifest"}
        assert read_jsonl(job.artifacts["jsonl"]) == job.result.records
        with open(job.artifacts["manifest"]) as handle:
            manifest = json.load(handle)
        assert "adaptive" in manifest["stats"]
        assert manifest["stats"]["adaptive"]["points_total"] == 2

    def test_fixed_count_jobs_report_no_adaptive_block(self, queue):
        spec = SweepSpec(scenario=COIN, grid={"p": (0.0, 0.5)})
        job, _ = queue.submit(spec)
        job = _wait_terminal(queue, job.job_id)
        assert job.state == JobState.DONE
        assert "adaptive" not in job.to_dict()["stats"]
