"""End-to-end tests of the HTTP/JSON API (real server, real sockets).

Each fixture binds a ``ThreadingHTTPServer`` on an ephemeral port and talks
to it through :class:`SweepServiceClient` — the same path ``repro submit``
and the CI smoke job use.  The concurrency class pins the PR's acceptance
criterion: two concurrent clients submitting the same spec both get complete,
identical records, and the shared cache shows each trial executed once.
"""

from __future__ import annotations

import threading

import pytest

from repro.experiments import ResultCache, get_scenario, run_sweep
from repro.service import JobQueue, ServiceError, SweepServiceClient, make_server


@pytest.fixture
def service(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    queue = JobQueue(tmp_path / "data", cache=cache, max_workers=2)
    server = make_server("127.0.0.1", 0, queue)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = SweepServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client, queue, cache
    finally:
        server.shutdown()
        server.server_close()
        queue.shutdown(wait=True)
        thread.join(timeout=5)


class TestBasicEndpoints:
    def test_health(self, service):
        client, _, _ = service
        payload = client.health()
        assert payload["status"] == "ok"
        assert set(payload["jobs"]) == {"queued", "running", "done", "failed"}

    def test_scenarios_lists_the_registry(self, service):
        client, _, _ = service
        names = {entry["name"] for entry in client.scenarios()["scenarios"]}
        assert {"platform-energy", "fixedpoint-bitwidth", "network-lifetime"} <= names
        entry = next(e for e in client.scenarios()["scenarios"]
                     if e["name"] == "platform-energy")
        assert entry["spec"] == get_scenario("platform-energy").spec.to_dict()

    def test_metrics_snapshot(self, service):
        client, _, _ = service
        metrics = client.metrics()["metrics"]
        assert "service.requests" in metrics


class TestJobRoundTrip:
    def test_submit_poll_fetch(self, service):
        client, _, _ = service
        spec = get_scenario("platform-energy").spec
        response = client.submit(spec)
        assert response["deduplicated"] is False
        job_id = response["job"]["job_id"]

        status = client.wait(job_id, timeout_s=60)
        assert status["state"] == "done"
        assert status["progress"]["final"] is True
        assert status["stats"]["num_trials"] == spec.num_trials

        records = client.records(job_id)
        assert records["count"] == spec.num_trials
        assert records["records"] == run_sweep(spec).records

        stats = client.stats(job_id)["stats"]
        assert stats["executed"] == spec.num_trials

        manifest = client.manifest(job_id)["manifest"]
        assert manifest["spec"] == spec.to_dict()
        assert manifest["stats"]["num_trials"] == spec.num_trials

    def test_jobs_listing(self, service):
        client, _, _ = service
        spec = get_scenario("platform-energy").spec
        job_id = client.submit(spec)["job"]["job_id"]
        client.wait(job_id, timeout_s=60)
        listed = client.jobs()["jobs"]
        assert [job["job_id"] for job in listed] == [job_id]


class TestErrorMapping:
    def test_unknown_path_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/api/v1/nonsense")
        assert excinfo.value.status == 404

    def test_unknown_job_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-000999-deadbeef")
        assert excinfo.value.status == 404

    def test_bad_schema_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/api/v1/jobs", {"spec": {}})
        assert excinfo.value.status == 400
        assert "scenario" in str(excinfo.value)

    def test_unknown_scenario_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/api/v1/jobs", {"spec": {"scenario": "nope"}})
        assert excinfo.value.status == 400
        assert "unknown scenario" in str(excinfo.value)

    def test_records_before_done_409(self, service):
        client, queue, _ = service
        # a queued job that never starts: saturate the 2 workers first is
        # racy — instead ask for records of a job we enqueue and check the
        # 409 only if it has not finished yet; the dedup path keeps this
        # deterministic: submit, then immediately request records
        spec = get_scenario("network-lifetime").spec
        job_id = client.submit(spec)["job"]["job_id"]
        try:
            payload = client.records(job_id)
        except ServiceError as error:
            assert error.status == 409
            assert error.payload.get("state") in ("queued", "running")
        else:
            # slow machine finished it already — records must be complete then
            assert payload["count"] == spec.num_trials
        client.wait(job_id, timeout_s=120)

    def test_method_not_allowed_405(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/api/v1/health", {})
        assert excinfo.value.status == 405

    def test_invalid_json_body_400(self, service):
        import urllib.request

        client, _, _ = service
        request = urllib.request.Request(
            f"{client.base_url}/api/v1/jobs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestConcurrentClients:
    """The PR's acceptance criterion, end to end over real sockets."""

    def test_same_spec_twice_executes_each_trial_once(self, service):
        client, queue, cache = service
        spec = get_scenario("platform-energy").spec
        responses = []
        barrier = threading.Barrier(2)

        def submit_and_fetch():
            barrier.wait()
            response = client.submit(spec)
            job_id = response["job"]["job_id"]
            status = client.wait(job_id, timeout_s=60)
            responses.append({
                "submit": response,
                "status": status,
                "records": client.records(job_id)["records"],
            })

        threads = [threading.Thread(target=submit_and_fetch) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90)
        assert len(responses) == 2

        first, second = responses
        # both clients saw the same (singleflighted) job...
        assert (first["submit"]["job"]["job_id"]
                == second["submit"]["job"]["job_id"])
        assert sorted(r["submit"]["deduplicated"] for r in responses) == [False, True]
        # ...and both fetched complete, identical records
        assert first["records"] == second["records"]
        assert len(first["records"]) == spec.num_trials
        assert first["records"] == run_sweep(spec).records

        # the shared cache executed each overlapping trial exactly once
        assert cache.stats.writes == spec.num_trials
        assert first["status"]["stats"]["executed"] == spec.num_trials

    def test_overlapping_specs_share_cached_trials(self, service):
        """Cross-spec dedup: the second job's overlap comes from the cache."""
        client, _, cache = service
        full = get_scenario("platform-energy").spec
        subset = full.with_axis("platform", ("MicroBlaze", "TI C6713 DSP"))

        sub_id = client.submit(subset)["job"]["job_id"]
        client.wait(sub_id, timeout_s=60)
        full_id = client.submit(full)["job"]["job_id"]
        status = client.wait(full_id, timeout_s=60)

        assert sub_id != full_id
        assert status["stats"]["cache_hits"] == subset.num_trials
        assert status["stats"]["executed"] == full.num_trials - subset.num_trials
        # every overlapping trial was written to the shared cache exactly once
        assert cache.stats.writes == full.num_trials
