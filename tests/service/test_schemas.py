"""Tests for the service's JSON request validation."""

from __future__ import annotations

import pytest

from repro.experiments import get_scenario
from repro.service.schemas import JobOptions, SchemaError, parse_submit_request


def _valid_body(**options):
    body = {"spec": get_scenario("platform-energy").spec.to_dict()}
    if options:
        body["options"] = options
    return body


class TestParseSubmitRequest:
    def test_round_trips_a_real_spec(self):
        spec, options = parse_submit_request(_valid_body())
        assert spec == get_scenario("platform-energy").spec
        assert options == JobOptions()

    def test_options_parsed(self):
        _, options = parse_submit_request(_valid_body(jobs=4, cache=False, trace=True))
        assert options == JobOptions(jobs=4, cache=False, trace=True)

    @pytest.mark.parametrize("payload,match", [
        ([], "request body must be a JSON object"),
        ("x", "request body must be a JSON object"),
        ({}, "must carry a 'spec'"),
        ({"spec": 3}, "'spec' must be a JSON object"),
        ({"spec": {}}, "spec.scenario must be a non-empty string"),
        ({"spec": {"scenario": ""}}, "spec.scenario must be a non-empty string"),
        ({"spec": {"scenario": 4}}, "spec.scenario must be a non-empty string"),
        ({"spec": {"scenario": "s"}, "extra": 1}, "unknown request key"),
    ])
    def test_envelope_violations(self, payload, match):
        with pytest.raises(SchemaError, match=match):
            parse_submit_request(payload)

    @pytest.mark.parametrize("options,match", [
        ({"jobs": 0}, "jobs must be an integer >= 1"),
        ({"jobs": True}, "jobs must be an integer >= 1"),
        ({"jobs": "4"}, "jobs must be an integer >= 1"),
        ({"cache": 1}, "cache must be a boolean"),
        ({"trace": "yes"}, "trace must be a boolean"),
        ({"nope": 1}, "unknown option key"),
        (3, "'options' must be a JSON object"),
    ])
    def test_option_violations(self, options, match):
        body = _valid_body()
        body["options"] = options
        with pytest.raises(SchemaError, match=match):
            parse_submit_request(body)

    def test_invalid_spec_structure_is_a_schema_error(self):
        # grid/base overlap: SweepSpec.__post_init__ rejects it
        body = {"spec": {"scenario": "platform-energy",
                         "grid": {"x": [1, 2]}, "base": {"x": 1}}}
        with pytest.raises(SchemaError, match="invalid spec"):
            parse_submit_request(body)

    def test_unknown_scenario_passes_schema(self):
        # scenario existence is the queue's concern (registry lookup), not
        # the wire schema's — the HTTP layer maps the KeyError to a 400
        spec, _ = parse_submit_request({"spec": {"scenario": "no-such-scenario"}})
        assert spec.scenario == "no-such-scenario"
