"""Tests for the job queue: lifecycle, singleflight, failure, artefacts."""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments import ResultCache, Scenario, get_scenario, register, run_sweep
from repro.experiments.spec import SweepSpec
from repro.experiments.store import read_jsonl
from repro.service.jobs import JobQueue, JobState, spec_key
from repro.service.schemas import JobOptions


def _wait_terminal(queue, job_id, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = queue.get(job_id)
        if job is not None and job.state in JobState.TERMINAL:
            return job
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached a terminal state")


@pytest.fixture
def queue(tmp_path):
    queue = JobQueue(tmp_path / "data", cache=ResultCache(tmp_path / "cache"),
                     max_workers=2)
    yield queue
    queue.shutdown(wait=True)


class TestLifecycle:
    def test_submit_runs_to_done_with_artifacts(self, queue):
        spec = get_scenario("platform-energy").spec
        job, deduplicated = queue.submit(spec)
        assert not deduplicated
        job = _wait_terminal(queue, job.job_id)
        assert job.state == JobState.DONE
        assert job.error is None
        assert job.started_s is not None and job.finished_s is not None
        assert job.result is not None and len(job.result.records) == spec.num_trials
        assert set(job.artifacts) == {"jsonl", "csv", "manifest"}
        # the persisted records equal the in-memory ones
        assert read_jsonl(job.artifacts["jsonl"]) == job.result.records

    def test_job_records_match_direct_run_sweep(self, queue):
        spec = get_scenario("platform-energy").spec
        job, _ = queue.submit(spec)
        job = _wait_terminal(queue, job.job_id)
        assert job.result.records == run_sweep(spec).records

    def test_final_progress_heartbeat_lands_on_the_job(self, queue):
        spec = get_scenario("platform-energy").spec
        job, _ = queue.submit(spec)
        job = _wait_terminal(queue, job.job_id)
        assert job.progress is not None
        assert job.progress.final is True
        assert job.progress.completed == spec.num_trials

    def test_to_dict_is_json_shaped(self, queue):
        spec = get_scenario("platform-energy").spec
        job, _ = queue.submit(spec)
        job = _wait_terminal(queue, job.job_id)
        payload = job.to_dict()
        assert payload["state"] == "done"
        assert payload["scenario"] == "platform-energy"
        assert payload["stats"]["num_trials"] == spec.num_trials
        assert payload["progress"]["final"] is True

    def test_unknown_scenario_raises_before_enqueue(self, queue):
        with pytest.raises(KeyError, match="unknown scenario"):
            queue.submit(SweepSpec(scenario="no-such-scenario"))
        assert queue.jobs() == []

    def test_trace_option_writes_a_per_job_trace(self, queue):
        spec = get_scenario("platform-energy").spec
        job, _ = queue.submit(spec, JobOptions(trace=True))
        job = _wait_terminal(queue, job.job_id)
        assert job.state == JobState.DONE
        assert "trace" in job.artifacts
        from repro.telemetry.tracing import read_trace, validate_trace

        records = read_trace(job.artifacts["trace"])
        assert validate_trace(records) == []
        assert sum(1 for r in records if r.name == "trial") == spec.num_trials


class TestSingleflight:
    def test_identical_specs_share_one_job(self, queue):
        spec = get_scenario("platform-energy").spec
        first, dedup_first = queue.submit(spec)
        second, dedup_second = queue.submit(spec)
        assert not dedup_first and dedup_second
        assert first.job_id == second.job_id
        _wait_terminal(queue, first.job_id)

    def test_dedup_ignores_options(self, queue):
        spec = get_scenario("platform-energy").spec
        first, _ = queue.submit(spec, JobOptions(jobs=1))
        second, deduplicated = queue.submit(spec, JobOptions(jobs=4, trace=True))
        assert deduplicated and second.job_id == first.job_id
        assert second.options == first.options  # first submission's options win
        _wait_terminal(queue, first.job_id)

    def test_different_specs_get_different_jobs(self, queue):
        spec = get_scenario("platform-energy").spec
        other = spec.with_seed(base_seed=123)
        assert spec_key(spec) != spec_key(other)
        first, _ = queue.submit(spec)
        second, deduplicated = queue.submit(other)
        assert not deduplicated
        assert first.job_id != second.job_id
        _wait_terminal(queue, first.job_id)
        _wait_terminal(queue, second.job_id)

    def test_done_job_keeps_answering_resubmissions(self, queue):
        spec = get_scenario("platform-energy").spec
        job, _ = queue.submit(spec)
        _wait_terminal(queue, job.job_id)
        again, deduplicated = queue.submit(spec)
        assert deduplicated and again.job_id == job.job_id

    def test_concurrent_submissions_collapse_to_one_job(self, queue):
        spec = get_scenario("platform-energy").spec
        results = []
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            results.append(queue.submit(spec))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        job_ids = {job.job_id for job, _ in results}
        assert len(job_ids) == 1
        assert sum(1 for _, deduplicated in results if not deduplicated) == 1
        _wait_terminal(queue, job_ids.pop())


class TestFailure:
    def _register_failing(self, name):
        def run_trial(params, seed):
            raise RuntimeError("scenario always fails")

        register(Scenario(
            name=name, description="always fails (test only)", layers=("test",),
            version="1", run_trial=run_trial,
            default_spec=SweepSpec(scenario=name, grid={"x": (0, 1)}),
        ))

    def test_failed_job_records_the_error(self, queue):
        self._register_failing("service-fails")
        job, _ = queue.submit(get_scenario("service-fails").spec)
        job = _wait_terminal(queue, job.job_id)
        assert job.state == JobState.FAILED
        assert "scenario always fails" in job.error
        assert job.result is None

    def test_failed_job_leaves_singleflight_so_resubmission_retries(self, queue):
        self._register_failing("service-fails-retry")
        spec = get_scenario("service-fails-retry").spec
        job, _ = queue.submit(spec)
        _wait_terminal(queue, job.job_id)
        retry, deduplicated = queue.submit(spec)
        assert not deduplicated
        assert retry.job_id != job.job_id
        _wait_terminal(queue, retry.job_id)

    def test_state_counts(self, queue):
        self._register_failing("service-fails-counts")
        done, _ = queue.submit(get_scenario("platform-energy").spec)
        failed, _ = queue.submit(get_scenario("service-fails-counts").spec)
        _wait_terminal(queue, done.job_id)
        _wait_terminal(queue, failed.job_id)
        counts = queue.state_counts()
        assert counts["done"] == 1 and counts["failed"] == 1
