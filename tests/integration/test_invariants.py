"""Cross-module property-based tests of the library's core invariants.

These hypothesis tests pin the mathematical properties the rest of the system
relies on, across module boundaries:

* linearity of the channel and of the signal-matrix synthesis,
* scaling behaviour of the MP estimator,
* monotonicity of the hardware models along the design axes,
* consistency between the analytical energy model and the platform comparison.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.multipath import random_sparse_channel
from repro.core.matching_pursuit import matching_pursuit
from repro.core.dse import divisors
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.hardware.fpga import FPGAImplementation
from repro.hardware.opcounts import matching_pursuit_operation_counts
from repro.hardware.processors import ProcessorImplementation, microblaze_soft_core, ti_c6713


class TestChannelLinearity:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           scale=st.floats(min_value=0.1, max_value=10.0))
    def test_channel_apply_is_linear(self, seed, scale):
        rng = np.random.default_rng(seed)
        channel = random_sparse_channel(num_paths=3, max_delay=20, rng=seed)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        y = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        combined = channel.apply(scale * x + y)
        np.testing.assert_allclose(
            combined, scale * channel.apply(x) + channel.apply(y), atol=1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_synthesis_matches_channel_apply_on_pilot(self, aquamodem_matrices, seed):
        """S @ f equals convolving the pilot waveform with the channel taps."""
        channel = random_sparse_channel(num_paths=3, max_delay=100, rng=seed)
        f = channel.coefficient_vector(112)
        synthesized = aquamodem_matrices.synthesize(f)
        pilot = np.zeros(224, dtype=complex)
        pilot[:112] = aquamodem_matrices.waveform
        convolved = channel.apply(pilot)
        np.testing.assert_allclose(synthesized, convolved, atol=1e-9)


class TestMatchingPursuitInvariances:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           scale=st.floats(min_value=0.05, max_value=20.0))
    def test_estimate_scales_linearly_with_received(self, aquamodem_matrices, seed, scale):
        """MP(α r) selects the same delays and scales the coefficients by α."""
        rng = np.random.default_rng(seed)
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        base = matching_pursuit(received, aquamodem_matrices, num_paths=4)
        scaled = matching_pursuit(scale * received, aquamodem_matrices, num_paths=4)
        np.testing.assert_array_equal(base.path_indices, scaled.path_indices)
        np.testing.assert_allclose(
            scaled.coefficients, scale * base.coefficients, rtol=1e-9, atol=1e-12
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           phase=st.floats(min_value=-np.pi, max_value=np.pi))
    def test_global_phase_rotation_rotates_coefficients(self, aquamodem_matrices, seed, phase):
        rng = np.random.default_rng(seed)
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        rotation = np.exp(1j * phase)
        base = matching_pursuit(received, aquamodem_matrices, num_paths=3)
        rotated = matching_pursuit(rotation * received, aquamodem_matrices, num_paths=3)
        np.testing.assert_array_equal(base.path_indices, rotated.path_indices)
        np.testing.assert_allclose(
            rotated.coefficients, rotation * base.coefficients, rtol=1e-9, atol=1e-12
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           num_paths=st.integers(min_value=1, max_value=12))
    def test_exactly_requested_number_of_paths(self, aquamodem_matrices, seed, num_paths):
        rng = np.random.default_rng(seed)
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        result = matching_pursuit(received, aquamodem_matrices, num_paths=num_paths)
        assert np.count_nonzero(result.coefficients) == num_paths
        assert len(set(result.path_indices.tolist())) == num_paths

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_prefix_consistency_of_greedy_selection(self, aquamodem_matrices, seed):
        """Running MP for more iterations never changes the earlier picks."""
        rng = np.random.default_rng(seed)
        received = rng.standard_normal(224) + 1j * rng.standard_normal(224)
        short = matching_pursuit(received, aquamodem_matrices, num_paths=3)
        long = matching_pursuit(received, aquamodem_matrices, num_paths=8)
        np.testing.assert_array_equal(short.path_indices, long.path_indices[:3])


class TestHardwareModelMonotonicity:
    @pytest.mark.parametrize("device", [VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000])
    @pytest.mark.parametrize("bits", [8, 12, 16])
    def test_time_down_area_up_with_parallelism(self, device, bits):
        feasible_levels = [
            p for p in divisors(112)
            if FPGAImplementation(device, p, bits).is_feasible
        ]
        times = [FPGAImplementation(device, p, bits).timing.execution_time_s for p in feasible_levels]
        areas = [FPGAImplementation(device, p, bits).area.slices for p in feasible_levels]
        assert times == sorted(times, reverse=True)
        assert areas == sorted(areas)

    @pytest.mark.parametrize("device", [VIRTEX4_XC4VSX55, SPARTAN3_XC3S5000])
    @pytest.mark.parametrize("blocks", [1, 14])
    def test_everything_grows_with_word_length(self, device, blocks):
        widths = (6, 8, 10, 12, 16, 20)
        implementations = [FPGAImplementation(device, blocks, b) for b in widths]
        areas = [i.area.slices for i in implementations]
        times = [i.timing.execution_time_s for i in implementations]
        energies = [i.energy.energy_j for i in implementations]
        assert areas == sorted(areas)
        assert times == sorted(times)
        assert energies == sorted(energies)

    @given(nf=st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_processor_energy_grows_with_workload(self, nf):
        smaller = ProcessorImplementation(ti_c6713(), num_paths=nf)
        larger = ProcessorImplementation(ti_c6713(), num_paths=nf + 1)
        assert larger.energy.energy_j > smaller.energy.energy_j

    @given(nf=st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_fpga_advantage_holds_for_any_workload_size(self, nf):
        """The platform ranking is not an artefact of Nf = 6."""
        fpga = FPGAImplementation(VIRTEX4_XC4VSX55, 112, 8, num_paths=nf)
        dsp = ProcessorImplementation(ti_c6713(), num_paths=nf)
        microblaze = ProcessorImplementation(microblaze_soft_core(), num_paths=nf)
        assert fpga.energy.energy_j < dsp.energy.energy_j < microblaze.energy.energy_j

    def test_opcount_consistency_with_naive_loop_structure(self):
        """The op-count model's inner-loop count matches the naive implementation."""
        ops = matching_pursuit_operation_counts(num_delays=12, window_length=24, num_paths=4)
        assert ops.inner_loop_iterations == 12 * 24 + 4 * 12
