"""Integration test: the full passband transmit/receive chain.

Bits -> DS-SS baseband -> carrier upconversion -> multipath at the passband
rate -> additive noise -> I/Q downconversion -> frame acquisition -> MP
channel estimation + RAKE detection -> bits.  This is the complete signal path
of Figure 2 (analog front end + hardware platform) realised digitally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel
from repro.channel.simulator import add_noise_for_snr, apply_channel
from repro.dsp.passband import PassbandFrontEnd
from repro.modem.config import AquaModemConfig
from repro.modem.frame import bit_errors, random_bits
from repro.modem.receiver import Receiver
from repro.modem.synchronization import FrameSynchronizer
from repro.modem.transmitter import Transmitter


class TestPassbandChain:
    @pytest.fixture(scope="class")
    def chain(self):
        config = AquaModemConfig()
        transmitter = Transmitter(config=config)
        receiver = Receiver(config=config)
        front_end = PassbandFrontEnd(
            carrier_frequency_hz=config.carrier_frequency_hz,
            baseband_rate_hz=config.sampling_rate_hz,
            interpolation_factor=8,
        )
        synchronizer = FrameSynchronizer(pilot_waveform=transmitter.reference_waveform())
        return config, transmitter, receiver, front_end, synchronizer

    def test_noiseless_passband_roundtrip(self, chain):
        config, transmitter, receiver, front_end, synchronizer = chain
        bits = random_bits(30, rng=0)
        baseband = transmitter.transmit_bits(bits).samples
        passband = front_end.upconvert(baseband)
        recovered_baseband = front_end.downconvert(passband)
        aligned = synchronizer.align(recovered_baseband)
        output = receiver.receive(aligned)
        assert bit_errors(bits, output.bits[: len(bits)]) == 0

    def test_passband_chain_with_delay_multipath_and_noise(self, chain):
        config, transmitter, receiver, front_end, synchronizer = chain
        bits = random_bits(24, rng=1)
        baseband = transmitter.transmit_bits(bits).samples
        passband = front_end.upconvert(baseband)

        # an unknown acoustic propagation delay plus a second passband arrival
        factor = front_end.interpolation_factor
        delay_baseband_samples = 41
        passband = np.concatenate(
            [np.zeros(delay_baseband_samples * factor), passband]
        )
        echo_delay = 12 * factor
        passband_channel = MultipathChannel(
            delays=np.array([0, echo_delay]), gains=np.array([1.0, 0.4])
        )
        passband = np.real(apply_channel(passband.astype(complex), passband_channel))

        # additive noise at a healthy receive SNR
        noisy = np.real(add_noise_for_snr(passband.astype(complex), 20.0, rng=2))

        recovered = front_end.downconvert(noisy)
        result = synchronizer.acquire(recovered)
        assert result.detected
        assert abs(result.start_index - delay_baseband_samples) <= 2

        output = receiver.receive(recovered[result.start_index :])
        assert bit_errors(bits, output.bits[: len(bits)]) == 0
        # the echo shows up in the channel estimate near 12 baseband samples
        estimate = output.channel_estimate
        assert np.min(np.abs(estimate.path_indices - 12)) <= 1
