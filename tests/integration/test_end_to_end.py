"""Integration tests spanning the whole stack.

These exercise the chains a downstream user of the library would build:
waveform -> channel -> receiver (with each channel-estimator backend),
design-space exploration -> platform comparison -> network lifetime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AquaModemConfig,
    FixedPointMatchingPursuit,
    IPCoreConfig,
    IPCoreSimulator,
    Receiver,
    Transmitter,
    compare_platforms,
    matching_pursuit,
    random_sparse_channel,
)
from repro.channel.geometry import ShallowWaterGeometry
from repro.channel.multipath import MultipathChannel
from repro.channel.simulator import add_noise_for_snr, apply_channel
from repro.core.dse import DesignSpaceExplorer
from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.simulator import NetworkSimulator
from repro.network.topology import grid_deployment
from repro.network.traffic import PeriodicTraffic


class TestPhysicalChannelToEstimator:
    """Image-method geometry -> discretised channel -> MP estimation."""

    def test_geometry_driven_channel_is_recovered(self, aquamodem_matrices):
        config = AquaModemConfig()
        geometry = ShallowWaterGeometry(
            water_depth_m=15.0, source_depth_m=8.0, receiver_depth_m=6.0, range_m=250.0
        )
        channel = MultipathChannel.from_geometry(
            geometry, sampling_interval_s=config.sampling_interval_s,
            max_delay_samples=config.samples_per_symbol,
        )
        received = add_noise_for_snr(
            aquamodem_matrices.synthesize(channel.coefficient_vector(112)), 25.0, rng=0
        )
        estimate = matching_pursuit(received, aquamodem_matrices, num_paths=6)
        # the direct arrival (delay 0) must be among the resolved paths, and
        # the sparse estimate must explain most of the received energy —
        # closely-spaced physically-derived taps are strongly correlated, so
        # exact tap-by-tap matching is not expected of a greedy pursuit
        from repro.core.metrics import residual_energy_ratio

        assert 0 in estimate.path_indices
        assert residual_energy_ratio(received, aquamodem_matrices.S, estimate.coefficients) < 0.2


class TestReceiverWithHardwareAccurateEstimators:
    """The modem works end-to-end with the fixed-point and IP-core estimators."""

    @pytest.fixture(scope="class")
    def link(self):
        config = AquaModemConfig()
        tx = Transmitter(config=config)
        channel = random_sparse_channel(num_paths=3, max_delay=60, rng=11, min_separation=6)
        symbols = np.array([5, 2, 7, 1, 0, 3, 6, 4])
        received = apply_channel(tx.transmit_symbols(symbols).samples, channel)
        received = add_noise_for_snr(received, 18.0, rng=12)
        return config, symbols, received

    def test_float_estimator(self, link):
        config, symbols, received = link
        output = Receiver(config=config).receive(received)
        assert np.count_nonzero(output.symbols != symbols) == 0

    def test_fixed_point_estimator(self, link, aquamodem_matrices):
        config, symbols, received = link
        fp = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8, num_paths=6)

        def estimator(window, matrices, num_paths):
            return fp.estimate(window)

        output = Receiver(config=config, estimator=estimator).receive(received)
        assert np.count_nonzero(output.symbols != symbols) == 0

    def test_ipcore_estimator(self, link, aquamodem_matrices):
        config, symbols, received = link
        core = IPCoreSimulator(
            aquamodem_matrices, IPCoreConfig(num_fc_blocks=14, word_length=8, num_paths=6)
        )

        def estimator(window, matrices, num_paths):
            return core.estimate(window).result

        output = Receiver(config=config, estimator=estimator).receive(received)
        assert np.count_nonzero(output.symbols != symbols) == 0


class TestDesignFlowToNetworkLifetime:
    """DSE -> pick a design -> platform comparison -> network deployment."""

    def test_full_design_flow(self):
        explorer = DesignSpaceExplorer()
        best = explorer.minimum_energy_point()
        assert best.point.num_fc_blocks == 112 and best.point.word_length == 8

        comparison = compare_platforms()
        best_platform = comparison.best_energy()
        assert "112FC" in best_platform.label

        # plug the chosen platform's processing energy into a deployment
        budget = ModemEnergyBudget(
            processing_energy_per_estimation_j=best_platform.energy_uj * 1e-6
        )
        simulator = NetworkSimulator(
            deployment=grid_deployment(3, 3, spacing_m=200.0),
            energy_budget=budget,
            traffic=PeriodicTraffic(report_interval_s=120.0, packet_symbols=16,
                                    jitter_fraction=0.0),
            communication_range_m=250.0,
            battery_capacity_j=2_000.0,
            rng=0,
        )
        result = simulator.run(max_time_s=2 * 86_400.0, stop_at_first_death=True)
        assert result.packets_delivered > 0
        # with a 2 kJ battery the bottleneck relay eventually dies
        assert result.first_death_time_s is not None

    def test_realtime_constraint_respected_by_all_platforms(self):
        """Every platform in Table 3 finishes an estimation within 22.4 ms."""
        comparison = compare_platforms()
        for result in comparison.results:
            assert result.time_us < 22.4e3
