"""The documentation gates, runnable locally: CLI-reference drift and links.

CI runs the same two scripts in its docs job; these tests make the gates
part of tier-1 so a parser change that forgets to regenerate ``docs/cli.md``
fails fast on the developer's machine, not in review.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / script), *args],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )


class TestCliReference:
    def test_committed_reference_matches_the_parser(self):
        result = _run("gen_cli_reference.py", "--check")
        assert result.returncode == 0, result.stderr

    def test_reference_documents_every_subcommand(self):
        text = (REPO_ROOT / "docs" / "cli.md").read_text()
        from repro.cli import build_parser
        import argparse

        parser = build_parser()
        (subparsers,) = [
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        ]
        for name in subparsers.choices:
            assert f"## repro {name}" in text, f"docs/cli.md lacks a section for {name!r}"


class TestDocsLinks:
    def test_all_relative_links_resolve(self):
        result = _run("check_docs_links.py")
        assert result.returncode == 0, result.stderr
