"""Unit tests for the per-packet modem energy budget."""

from __future__ import annotations

import pytest

from repro.modem.config import AquaModemConfig
from repro.modem.energy_budget import ModemEnergyBudget, PacketEnergyBreakdown


class TestPacketEnergyBreakdown:
    def test_total_and_fraction(self):
        breakdown = PacketEnergyBreakdown(transmit_j=1.0, receive_frontend_j=0.5, processing_j=0.5)
        assert breakdown.total_j == pytest.approx(2.0)
        assert breakdown.processing_fraction == pytest.approx(0.25)

    def test_zero_total(self):
        assert PacketEnergyBreakdown(0.0, 0.0, 0.0).processing_fraction == 0.0


class TestModemEnergyBudget:
    @pytest.fixture(scope="class")
    def budget(self) -> ModemEnergyBudget:
        return ModemEnergyBudget(
            transmit_power_w=2.0,
            receive_frontend_power_w=0.05,
            processing_energy_per_estimation_j=9.5e-6,
            processing_idle_power_w=0.01,
        )

    def test_packet_duration(self, budget):
        # 32 symbols x 22.4 ms
        assert budget.packet_duration_s(32) == pytest.approx(0.7168)

    def test_transmit_energy(self, budget):
        assert budget.transmit_energy_j(32) == pytest.approx(2.0 * 0.7168)

    def test_receive_energy_components(self, budget):
        breakdown = budget.receive_energy_j(32)
        assert breakdown.transmit_j == 0.0
        assert breakdown.receive_frontend_j == pytest.approx(0.05 * 0.7168)
        expected_processing = 32 * 9.5e-6 + 0.01 * 0.7168
        assert breakdown.processing_j == pytest.approx(expected_processing)

    def test_processing_energy_scales_with_platform(self):
        config = AquaModemConfig()
        fpga = ModemEnergyBudget(config=config, processing_energy_per_estimation_j=9.5e-6)
        microblaze = ModemEnergyBudget(config=config, processing_energy_per_estimation_j=2000.4e-6)
        fpga_rx = fpga.receive_energy_j(32).processing_j
        mb_rx = microblaze.receive_energy_j(32).processing_j
        assert mb_rx > fpga_rx
        # the per-estimation part scales by the Table 3 ratio
        idle = 0.01 * fpga.packet_duration_s(32)
        assert (mb_rx - idle) / (fpga_rx - idle) == pytest.approx(2000.4 / 9.5, rel=1e-6)

    def test_transaction_roles(self, budget):
        tx_only = budget.packet_transaction_energy_j(16, transmit=True, receive=False)
        rx_only = budget.packet_transaction_energy_j(16, transmit=False, receive=True)
        both = budget.packet_transaction_energy_j(16, transmit=True, receive=True)
        assert tx_only.receive_frontend_j == 0.0 and tx_only.processing_j == 0.0
        assert rx_only.transmit_j == 0.0
        assert both.total_j == pytest.approx(tx_only.total_j + rx_only.total_j)

    def test_idle_power(self, budget):
        assert budget.idle_power_w() == pytest.approx(0.06)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModemEnergyBudget(transmit_power_w=-1.0)
        with pytest.raises(ValueError):
            ModemEnergyBudget().packet_duration_s(0)
