"""Statistical regression guard for the E7 conclusion (batched engine).

Future refactors of the batched engine must not bend the physics: over a
fixed seed set the SER curves stay monotone non-increasing in SNR (common
random numbers pair the channel/noise realisations across SNR points), the
DS-SS link is error free at high SNR, and DS-SS is no worse than FSK there —
the Section III claim experiment E7 exists to check.
"""

from __future__ import annotations

import pytest

from repro.analysis.ablations import dsss_vs_fsk_ablation
from repro.modem.link import LinkSimulator

SNR_POINTS_DB = (-12.0, -9.0, -6.0, -3.0, 0.0, 3.0, 6.0)
SEEDS = (0, 1, 2)
HIGH_SNR_DB = (0.0, 3.0, 6.0)


def _aggregated_ser(scheme: str) -> list[float]:
    """Pooled SER per SNR point; seeds are re-used across points (CRN pairing)."""
    sent = {snr: 0 for snr in SNR_POINTS_DB}
    errors = {snr: 0 for snr in SNR_POINTS_DB}
    for seed in SEEDS:
        for snr in SNR_POINTS_DB:
            result = LinkSimulator(rng=seed, batch=True).run(
                scheme, snr, num_symbols=120, num_frames=10
            )
            sent[snr] += result.symbols_sent
            errors[snr] += result.symbol_errors
    return [errors[snr] / sent[snr] for snr in SNR_POINTS_DB]


@pytest.mark.parametrize("scheme", ["DSSS", "FSK"])
def test_ser_monotone_non_increasing_in_snr(scheme):
    ser = _aggregated_ser(scheme)
    assert all(lo >= hi for lo, hi in zip(ser, ser[1:])), (
        f"{scheme} SER not monotone over SNR: {ser}"
    )
    # the sweep actually exercises both regimes
    assert ser[0] > 0.0
    assert ser[-1] == 0.0


def test_dsss_error_free_and_no_worse_than_fsk_at_high_snr():
    for seed in SEEDS:
        for snr in HIGH_SNR_DB:
            dsss = LinkSimulator(rng=seed, batch=True).run(
                "DSSS", snr, num_symbols=120, num_frames=10
            )
            fsk = LinkSimulator(rng=seed, batch=True).run(
                "FSK", snr, num_symbols=120, num_frames=10
            )
            assert dsss.symbol_error_rate == 0.0
            assert dsss.symbol_error_rate <= fsk.symbol_error_rate


def test_ablation_preserves_e7_conclusion_on_batched_engine():
    """The E7 ablation itself (unpaired scheme streams), on the batched engine."""
    curves = dsss_vs_fsk_ablation(
        snr_points_db=(-9.0, -6.0, -3.0, 0.0, 3.0), num_symbols=120, rng=0, batch=True
    )
    dsss = [r.symbol_error_rate for r in curves["DSSS"]]
    fsk = [r.symbol_error_rate for r in curves["FSK"]]
    assert all(d <= f for d, f in zip(dsss, fsk))
    assert dsss[-2] == 0.0 and dsss[-1] == 0.0
