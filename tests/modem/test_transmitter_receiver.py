"""Unit and integration tests for the DS-SS transmitter and receiver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, random_sparse_channel
from repro.channel.simulator import add_noise_for_snr, apply_channel
from repro.modem.config import AquaModemConfig
from repro.modem.frame import random_bits
from repro.modem.receiver import Receiver
from repro.modem.transmitter import Transmitter


@pytest.fixture(scope="module")
def config() -> AquaModemConfig:
    return AquaModemConfig()


@pytest.fixture(scope="module")
def transmitter(config) -> Transmitter:
    return Transmitter(config=config)


@pytest.fixture(scope="module")
def receiver(config) -> Receiver:
    return Receiver(config=config)


class TestTransmitter:
    def test_frame_length_includes_pilot(self, transmitter):
        frame = transmitter.transmit_symbols(np.array([1, 2, 3]))
        assert frame.samples.shape == ((3 + 1) * 224,)
        assert frame.num_payload_symbols == 3

    def test_no_pilot_mode(self, config):
        tx = Transmitter(config=config, pilot_symbol=None)
        frame = tx.transmit_symbols(np.array([1, 2]))
        assert frame.samples.shape == (2 * 224,)
        assert frame.pilot_symbol is None

    def test_transmit_bits_packs_three_per_symbol(self, transmitter):
        frame = transmitter.transmit_bits(random_bits(9, rng=0))
        assert frame.num_payload_symbols == 3

    def test_reference_waveform_matches_modulator(self, transmitter):
        waveform = transmitter.reference_waveform()
        assert waveform.shape == (112,)
        np.testing.assert_array_equal(waveform, transmitter.modulator.waveforms[0])

    def test_invalid_pilot(self, config):
        with pytest.raises(ValueError):
            Transmitter(config=config, pilot_symbol=8)


class TestReceiverNoiseless:
    def test_identity_channel_roundtrip(self, transmitter, receiver):
        symbols = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        frame = transmitter.transmit_symbols(symbols)
        output = receiver.receive(frame.samples)
        np.testing.assert_array_equal(output.symbols, symbols)
        assert output.channel_estimate is not None
        # identity channel: a single dominant tap at delay 0
        strongest = output.channel_estimate.path_indices[0]
        assert strongest == 0

    def test_bits_roundtrip(self, transmitter, receiver):
        bits = random_bits(30, rng=1)
        frame = transmitter.transmit_bits(bits)
        output = receiver.receive(frame.samples)
        np.testing.assert_array_equal(output.bits[: len(bits)], bits)

    def test_known_multipath_roundtrip(self, transmitter, receiver):
        symbols = np.array([3, 1, 4, 1, 5, 2, 6])
        frame = transmitter.transmit_symbols(symbols)
        channel = MultipathChannel(
            delays=np.array([0, 7, 30]),
            gains=np.array([1.0, 0.6 * np.exp(1j * 0.5), 0.35 * np.exp(-1j * 1.2)]),
        )
        received = apply_channel(frame.samples, channel)
        output = receiver.receive(received)
        np.testing.assert_array_equal(output.symbols, symbols)
        # the receiver's channel estimate should find the true taps
        est = output.channel_estimate
        found = set(est.path_indices.tolist())
        assert set(channel.delays.tolist()).issubset(found)

    def test_short_stream_rejected(self, receiver):
        with pytest.raises(ValueError):
            receiver.receive(np.zeros(10, dtype=complex))


class TestReceiverNoisy:
    @pytest.mark.parametrize("snr_db", [10.0, 20.0])
    def test_multipath_with_noise(self, transmitter, receiver, snr_db):
        rng = np.random.default_rng(42)
        symbols = rng.integers(0, 8, size=12)
        frame = transmitter.transmit_symbols(symbols)
        channel = random_sparse_channel(num_paths=3, max_delay=60, rng=7, min_separation=6)
        received = apply_channel(frame.samples, channel)
        received = add_noise_for_snr(received, snr_db, rng=8)
        output = receiver.receive(received)
        errors = int(np.count_nonzero(output.symbols != symbols))
        assert errors <= 1  # at 10+ dB post-spreading SNR the link is essentially error free

    def test_phase_rotated_channel(self, transmitter, receiver):
        symbols = np.array([2, 5, 7, 0])
        frame = transmitter.transmit_symbols(symbols)
        channel = MultipathChannel(
            delays=np.array([0]), gains=np.array([np.exp(1j * 2.3)])
        )
        received = apply_channel(frame.samples, channel)
        output = receiver.receive(received)
        np.testing.assert_array_equal(output.symbols, symbols)


class TestReceiverConfiguration:
    def test_custom_estimator_hook(self, config, transmitter):
        calls = []

        def spy_estimator(received, matrices, num_paths):
            from repro.core.matching_pursuit import matching_pursuit

            calls.append(received.shape)
            return matching_pursuit(received, matrices, num_paths=num_paths)

        receiver = Receiver(config=config, estimator=spy_estimator)
        frame = transmitter.transmit_symbols(np.array([1, 2]))
        receiver.receive(frame.samples)
        assert calls == [(224,)]

    def test_no_pilot_receiver_skips_estimation(self, config):
        tx = Transmitter(config=config, pilot_symbol=None)
        rx = Receiver(config=config, pilot_symbol=None)
        symbols = np.array([4, 2, 6])
        output = rx.receive(tx.transmit_symbols(symbols).samples)
        np.testing.assert_array_equal(output.symbols, symbols)
        assert output.channel_estimate is None

    def test_estimate_channel_requires_pilot(self, config):
        rx = Receiver(config=config, pilot_symbol=None)
        with pytest.raises(ValueError):
            rx.estimate_channel(np.zeros(224, dtype=complex))
