"""Unit tests for bit/symbol packing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.modem.frame import bit_errors, bits_to_symbols, random_bits, symbols_to_bits


class TestBitsToSymbols:
    def test_msb_first_packing(self):
        bits = np.array([1, 0, 1, 0, 1, 1])
        np.testing.assert_array_equal(bits_to_symbols(bits, 3), [5, 3])

    def test_padding_with_zeros(self):
        bits = np.array([1, 1])
        np.testing.assert_array_equal(bits_to_symbols(bits, 3), [6])

    def test_empty(self):
        assert bits_to_symbols(np.array([], dtype=int), 3).shape == (0,)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_symbols(np.array([0, 2]), 3)


class TestSymbolsToBits:
    def test_unpacking(self):
        np.testing.assert_array_equal(symbols_to_bits(np.array([5, 3]), 3), [1, 0, 1, 0, 1, 1])

    def test_out_of_range_symbol(self):
        with pytest.raises(ValueError):
            symbols_to_bits(np.array([8]), 3)

    def test_empty(self):
        assert symbols_to_bits(np.array([], dtype=int), 3).shape == (0,)

    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=64),
    )
    def test_roundtrip_property(self, symbols):
        symbols_arr = np.array(symbols, dtype=np.int64)
        bits = symbols_to_bits(symbols_arr, 3)
        back = bits_to_symbols(bits, 3)
        np.testing.assert_array_equal(back, symbols_arr)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=60))
    def test_bits_roundtrip_up_to_padding_property(self, bits):
        bits_arr = np.array(bits, dtype=np.int64)
        symbols = bits_to_symbols(bits_arr, 3)
        recovered = symbols_to_bits(symbols, 3)
        np.testing.assert_array_equal(recovered[: len(bits_arr)], bits_arr)
        # padding bits are always zero
        assert np.all(recovered[len(bits_arr):] == 0)


class TestRandomBitsAndErrors:
    def test_random_bits_binary_and_reproducible(self):
        a = random_bits(100, rng=0)
        b = random_bits(100, rng=0)
        np.testing.assert_array_equal(a, b)
        assert set(np.unique(a)) <= {0, 1}

    def test_bit_errors(self):
        assert bit_errors(np.array([0, 1, 1, 0]), np.array([0, 0, 1, 1])) == 2
        assert bit_errors(np.array([1, 1]), np.array([1, 1])) == 0

    def test_bit_errors_length_mismatch(self):
        with pytest.raises(ValueError):
            bit_errors(np.array([0, 1]), np.array([0]))
