"""Unit tests for frame synchronisation (pilot acquisition)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel
from repro.channel.simulator import add_noise_for_snr, apply_channel
from repro.modem.config import AquaModemConfig
from repro.modem.receiver import Receiver
from repro.modem.synchronization import FrameSynchronizer
from repro.modem.transmitter import Transmitter


@pytest.fixture(scope="module")
def transmitter() -> Transmitter:
    return Transmitter(config=AquaModemConfig())


@pytest.fixture(scope="module")
def synchronizer(transmitter) -> FrameSynchronizer:
    return FrameSynchronizer(pilot_waveform=transmitter.reference_waveform())


def _frame_with_offset(transmitter, symbols, offset, rng=None, snr_db=None):
    frame = transmitter.transmit_symbols(symbols)
    stream = np.concatenate([np.zeros(offset, dtype=complex), frame.samples])
    if snr_db is not None:
        stream = add_noise_for_snr(stream, snr_db, rng=rng,
                                   signal_power=1.0)
    return stream


class TestAcquisition:
    def test_exact_offset_recovered_noiseless(self, transmitter, synchronizer):
        for offset in (0, 1, 17, 250, 999):
            stream = _frame_with_offset(transmitter, np.array([3, 5]), offset)
            result = synchronizer.acquire(stream)
            assert result.detected
            assert result.start_index == offset
            assert result.peak_metric == pytest.approx(1.0, abs=1e-6)

    def test_offset_recovered_with_noise(self, transmitter, synchronizer):
        stream = _frame_with_offset(transmitter, np.array([1, 2, 3]), 321, rng=0, snr_db=10.0)
        result = synchronizer.acquire(stream)
        assert result.detected
        assert abs(result.start_index - 321) <= 1

    def test_noise_only_is_not_detected(self, synchronizer):
        rng = np.random.default_rng(1)
        noise = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        result = synchronizer.acquire(noise)
        assert not result.detected
        assert result.peak_metric < synchronizer.detection_threshold

    def test_multipath_peak_at_first_strong_arrival(self, transmitter, synchronizer):
        channel = MultipathChannel(delays=np.array([0, 9]), gains=np.array([1.0, 0.45]))
        frame = transmitter.transmit_symbols(np.array([2]))
        stream = np.concatenate([np.zeros(100, dtype=complex), apply_channel(frame.samples, channel)])
        result = synchronizer.acquire(stream)
        assert result.detected
        assert abs(result.start_index - 100) <= 1

    def test_profile_length(self, transmitter, synchronizer):
        stream = _frame_with_offset(transmitter, np.array([0]), 10)
        profile = synchronizer.correlation_profile(stream)
        assert profile.shape[0] == stream.shape[0] - 112 + 1

    def test_stream_shorter_than_pilot_rejected(self, synchronizer):
        with pytest.raises(ValueError):
            synchronizer.acquire(np.zeros(10, dtype=complex))


class TestAlign:
    def test_align_then_receive_recovers_symbols(self, transmitter, synchronizer):
        symbols = np.array([4, 1, 6, 7, 2])
        stream = _frame_with_offset(transmitter, symbols, 137, rng=2, snr_db=15.0)
        aligned = synchronizer.align(stream)
        receiver = Receiver(config=AquaModemConfig())
        output = receiver.receive(aligned)
        np.testing.assert_array_equal(output.symbols[: len(symbols)], symbols)

    def test_align_raises_without_detection(self, synchronizer):
        rng = np.random.default_rng(3)
        noise = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        with pytest.raises(ValueError, match="no pilot detected"):
            synchronizer.align(noise)


class TestValidation:
    def test_zero_energy_pilot_rejected(self):
        with pytest.raises(ValueError):
            FrameSynchronizer(pilot_waveform=np.zeros(16))

    def test_threshold_range(self, transmitter):
        with pytest.raises(ValueError):
            FrameSynchronizer(pilot_waveform=transmitter.reference_waveform(),
                              detection_threshold=1.5)

    def test_short_pilot_rejected(self):
        with pytest.raises(ValueError):
            FrameSynchronizer(pilot_waveform=np.array([1.0]))
