"""Unit tests for the link-level simulator (DS-SS vs FSK, experiment E7)."""

from __future__ import annotations

import math

import pytest

from repro.channel.multipath import MultipathChannel
from repro.modem.config import AquaModemConfig
from repro.modem.link import LinkResult, LinkSimulator, symbol_error_rate_curve

import numpy as np


class TestLinkResult:
    def test_symbol_error_rate(self):
        result = LinkResult(scheme="DSSS", snr_db=0.0, symbols_sent=100, symbol_errors=7)
        assert result.symbol_error_rate == pytest.approx(0.07)

    def test_zero_symbols_is_nan(self):
        # an undefined rate must not masquerade as "error free"
        assert math.isnan(LinkResult("FSK", 0.0, 0, 0).symbol_error_rate)


class TestLinkSimulator:
    @pytest.fixture(scope="class")
    def simulator(self) -> LinkSimulator:
        return LinkSimulator(config=AquaModemConfig(), rng=0)

    def test_dsss_error_free_at_high_snr(self, simulator):
        result = simulator.run_dsss(snr_db=15.0, num_symbols=40, num_frames=4)
        assert result.symbol_error_rate == 0.0
        assert result.symbols_sent >= 40

    def test_fsk_error_free_at_very_high_snr_single_path(self):
        channel = MultipathChannel(delays=np.array([0]), gains=np.array([1.0 + 0j]))
        simulator = LinkSimulator(config=AquaModemConfig(), channel=channel, rng=1)
        result = simulator.run_fsk(snr_db=25.0, num_symbols=40, num_frames=4)
        assert result.symbol_error_rate == 0.0

    def test_dsss_degrades_at_very_low_snr(self, simulator):
        result = simulator.run_dsss(snr_db=-25.0, num_symbols=40, num_frames=4)
        assert result.symbol_error_rate > 0.0

    def test_scheme_dispatch(self, simulator):
        assert simulator.run("DSSS", 10.0, 8, 2).scheme == "DSSS"
        assert simulator.run("fsk", 10.0, 8, 2).scheme == "FSK"
        with pytest.raises(ValueError):
            simulator.run("OFDM", 10.0, 8, 2)

    def test_dsss_beats_fsk_in_multipath(self):
        """The paper's Section III claim: DS-SS yields lower error rates than FSK."""
        config = AquaModemConfig()
        snr_db = 0.0
        dsss = LinkSimulator(config=config, rng=3).run_dsss(snr_db, num_symbols=60, num_frames=6)
        fsk = LinkSimulator(config=config, rng=3).run_fsk(snr_db, num_symbols=60, num_frames=6)
        assert dsss.symbol_error_rate <= fsk.symbol_error_rate

    def test_fixed_channel_mode(self):
        channel = MultipathChannel(delays=np.array([0, 11]), gains=np.array([1.0, 0.5 + 0.2j]))
        simulator = LinkSimulator(config=AquaModemConfig(), channel=channel, rng=4)
        result = simulator.run_dsss(snr_db=12.0, num_symbols=20, num_frames=2)
        assert result.symbol_error_rate == 0.0

    def test_validation(self, simulator):
        with pytest.raises(ValueError):
            simulator.run_dsss(10.0, num_symbols=0)


class TestSymbolErrorRateCurve:
    def test_curve_structure(self):
        results = symbol_error_rate_curve(
            "FSK", [-5.0, 5.0], num_symbols=24, rng=0, num_frames=3
        )
        assert [r.snr_db for r in results] == [-5.0, 5.0]
        assert all(r.scheme == "FSK" for r in results)

    def test_fsk_error_rate_non_increasing_with_snr(self):
        results = symbol_error_rate_curve(
            "FSK", [-10.0, 0.0, 15.0], num_symbols=60, rng=1, num_frames=6
        )
        rates = [r.symbol_error_rate for r in results]
        assert rates[0] >= rates[-1]
