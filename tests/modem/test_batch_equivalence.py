"""Seed-locked equivalence: the batched engine vs the per-frame reference.

The batched link engine (`repro.modem.batch`) promises to consume an RNG
stream identical to the per-frame Monte-Carlo loop and to reproduce its
results — these tests pin that promise for both schemes, across SNR points,
seed policies and channel modes, and for the batched Matching Pursuits
kernel against both reference implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, random_sparse_channel, random_sparse_channel_batch
from repro.core.matching_pursuit import (
    matching_pursuit,
    matching_pursuit_batch,
    matching_pursuit_naive,
)
from repro.dsp.signal_matrix import composite_signal_matrices
from repro.experiments.spec import SeedPolicy
from repro.modem.config import AquaModemConfig
from repro.modem.link import LinkSimulator, symbol_error_rate_curve

SNR_POINTS_DB = (-6.0, 0.0, 6.0)


def _counts(result):
    return (result.scheme, result.snr_db, result.symbols_sent, result.symbol_errors)


class TestLinkEquivalence:
    """Identical RNG streams -> identical LinkResult counts."""

    @pytest.mark.parametrize("scheme", ["DSSS", "FSK"])
    @pytest.mark.parametrize("snr_db", SNR_POINTS_DB)
    def test_counts_match_per_seed_policy(self, scheme, snr_db):
        policy = SeedPolicy(base_seed=7, replicates=3)
        for replicate in range(policy.replicates):
            seed = policy.trial_seed(replicate, {})
            reference = LinkSimulator(rng=seed, batch=False).run(
                scheme, snr_db, num_symbols=48, num_frames=4
            )
            batched = LinkSimulator(rng=seed, batch=True).run(
                scheme, snr_db, num_symbols=48, num_frames=4
            )
            assert _counts(batched) == _counts(reference)

    @pytest.mark.parametrize("scheme", ["DSSS", "FSK"])
    def test_curve_counts_match(self, scheme):
        """Whole curves share one generator; the stream stays locked across points."""
        reference = symbol_error_rate_curve(
            scheme, list(SNR_POINTS_DB), num_symbols=36, rng=3, num_frames=3, batch=False
        )
        batched = symbol_error_rate_curve(
            scheme, list(SNR_POINTS_DB), num_symbols=36, rng=3, num_frames=3, batch=True
        )
        assert [_counts(r) for r in batched] == [_counts(r) for r in reference]

    @pytest.mark.parametrize("scheme", ["DSSS", "FSK"])
    def test_fixed_channel_mode(self, scheme):
        channel = MultipathChannel(
            delays=np.array([0, 9, 23]), gains=np.array([1.0, 0.4 + 0.3j, -0.2j])
        )
        reference = LinkSimulator(channel=channel, rng=11, batch=False).run(
            scheme, 4.0, num_symbols=30, num_frames=3
        )
        batched = LinkSimulator(channel=channel, rng=11, batch=True).run(
            scheme, 4.0, num_symbols=30, num_frames=3
        )
        assert _counts(batched) == _counts(reference)

    def test_engine_consumes_identical_stream(self):
        """After a run, batched and per-frame generators sit at the same state."""
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        LinkSimulator(rng=rng_a, batch=False).run_dsss(0.0, num_symbols=24, num_frames=2)
        LinkSimulator(rng=rng_b, batch=True).run_dsss(0.0, num_symbols=24, num_frames=2)
        # identical state <=> identical next draws
        assert np.array_equal(rng_a.integers(0, 2**62, size=8), rng_b.integers(0, 2**62, size=8))

    def test_channel_batch_matches_sequential_draws(self):
        sequential = [
            random_sparse_channel(num_paths=4, max_delay=80, rng=np.random.default_rng(9))
            for _ in range(1)
        ]
        # one generator drawn twice sequentially == batch of two
        rng = np.random.default_rng(9)
        first = random_sparse_channel(num_paths=4, max_delay=80, rng=rng)
        second = random_sparse_channel(num_paths=4, max_delay=80, rng=rng)
        batch = random_sparse_channel_batch(2, num_paths=4, max_delay=80, rng=9)
        assert np.array_equal(batch[0].delays, first.delays)
        assert np.array_equal(batch[0].gains, first.gains)
        assert np.array_equal(batch[1].delays, second.delays)
        assert np.array_equal(batch[1].gains, second.gains)
        assert np.array_equal(sequential[0].delays, first.delays)


class TestMatchingPursuitBatchEquivalence:
    """The batched MP kernel against the per-trial reference implementations."""

    @pytest.fixture(scope="class")
    def matrices(self):
        return composite_signal_matrices(8, 7, 2)

    @pytest.fixture(scope="class")
    def received_stack(self, matrices):
        rng = np.random.default_rng(21)
        rows = []
        for seed in range(6):
            channel = random_sparse_channel(
                num_paths=4, max_delay=90, rng=rng, min_separation=4
            )
            clean = matrices.synthesize(channel.coefficient_vector(matrices.num_delays))
            noise = rng.standard_normal(clean.shape[0]) + 1j * rng.standard_normal(clean.shape[0])
            rows.append(clean + 0.05 * noise)
        return np.stack(rows)

    def test_matches_vectorised_reference(self, matrices, received_stack):
        batch = matching_pursuit_batch(received_stack, matrices, num_paths=6)
        for trial, received in enumerate(received_stack):
            single = matching_pursuit(received, matrices, num_paths=6)
            assert np.array_equal(batch.path_indices[trial], single.path_indices)
            np.testing.assert_allclose(
                batch.coefficients[trial], single.coefficients, rtol=1e-12, atol=1e-14
            )
            np.testing.assert_allclose(
                batch.path_gains[trial], single.path_gains, rtol=1e-12, atol=1e-14
            )
            np.testing.assert_allclose(
                batch.decision_history[trial], single.decision_history, rtol=1e-12, atol=1e-14
            )

    def test_matches_naive_specification(self, matrices, received_stack):
        batch = matching_pursuit_batch(received_stack[:2], matrices, num_paths=4)
        for trial in range(2):
            naive = matching_pursuit_naive(received_stack[trial], matrices, num_paths=4)
            assert np.array_equal(batch.path_indices[trial], naive.path_indices)
            np.testing.assert_allclose(
                batch.coefficients[trial], naive.coefficients, rtol=1e-12, atol=1e-14
            )

    def test_unbatch_round_trip(self, matrices, received_stack):
        batch = matching_pursuit_batch(received_stack, matrices, num_paths=5)
        singles = batch.unbatch()
        assert len(singles) == batch.num_trials == received_stack.shape[0]
        rebuilt = type(batch).from_results(singles, matrices.num_delays)
        assert np.array_equal(rebuilt.coefficients, batch.coefficients)
        assert np.array_equal(rebuilt.path_indices, batch.path_indices)


class TestWindowBatchHelpers:
    """The window-stack DSP helpers against their per-window references."""

    def test_rake_combine_windows_matches_rake_combine(self):
        from repro.dsp.detection import rake_combine, rake_combine_windows

        rng = np.random.default_rng(13)
        windows = rng.standard_normal((5, 224)) + 1j * rng.standard_normal((5, 224))
        delays = np.array([0, 7, 40], dtype=np.int64)
        gains = np.array([1.0, 0.5 - 0.2j, -0.3j])
        batched = rake_combine_windows(windows, delays, gains, symbol_length=112)
        for i, window in enumerate(windows):
            np.testing.assert_array_equal(
                batched[i], rake_combine(window, delays, gains, symbol_length=112)
            )
        with pytest.raises(ValueError):
            rake_combine_windows(windows, np.array([200]), np.array([1.0 + 0j]), 112)

    def test_symbol_decision_batch_matches_symbol_decision(self):
        from repro.dsp.detection import symbol_decision, symbol_decision_batch
        from repro.dsp.modulation.dsss import DSSSModulator

        modulator = DSSSModulator()
        rng = np.random.default_rng(14)
        combined = rng.standard_normal((6, modulator.symbol_samples)) + 1j * rng.standard_normal(
            (6, modulator.symbol_samples)
        )
        decisions, scores = symbol_decision_batch(combined, modulator.waveforms)
        for i, row in enumerate(combined):
            decision, row_scores = symbol_decision(row, modulator.waveforms)
            assert decisions[i] == decision
            np.testing.assert_allclose(scores[i], row_scores, rtol=1e-12)

    def test_demodulate_windows_matches_demodulate(self):
        from repro.dsp.modulation.dsss import DSSSModulator

        modulator = DSSSModulator()
        rng = np.random.default_rng(15)
        symbols = rng.integers(0, modulator.alphabet_size, size=9)
        stream = modulator.modulate(symbols)
        noisy = stream + 0.2 * (
            rng.standard_normal(stream.shape[0]) + 1j * rng.standard_normal(stream.shape[0])
        )
        delays = np.array([0, 5], dtype=np.int64)
        gains = np.array([1.0, 0.4 + 0.1j])
        reference = modulator.demodulate(noisy, path_delays=delays, path_gains=gains)
        windowed = modulator.demodulate_windows(
            modulator.receive_windows(noisy), path_delays=delays, path_gains=gains
        )
        np.testing.assert_array_equal(windowed.symbols, reference.symbols)
        np.testing.assert_allclose(windowed.scores, reference.scores, rtol=1e-12)
        # the no-channel default (single unit path at delay 0) also agrees
        plain = modulator.demodulate_windows(modulator.receive_windows(noisy))
        np.testing.assert_array_equal(plain.symbols, modulator.demodulate(noisy).symbols)


class TestReceiverBatchEquivalence:
    """receive_batch row-for-row against receive."""

    def test_receive_batch_matches_receive(self):
        from repro.channel.simulator import add_noise_for_snr, apply_channel
        from repro.modem.receiver import Receiver
        from repro.modem.transmitter import Transmitter

        config = AquaModemConfig()
        tx = Transmitter(config=config)
        rx = Receiver(config=config)
        rng = np.random.default_rng(33)
        frames = []
        for _ in range(4):
            channel = random_sparse_channel(num_paths=4, max_delay=60, rng=rng)
            symbols = rng.integers(0, config.walsh_symbols, size=10)
            faded = apply_channel(tx.transmit_symbols(symbols).samples, channel)
            frames.append(add_noise_for_snr(faded, 8.0, rng=rng))
        stack = np.stack(frames)

        batched = rx.receive_batch(stack)
        for t, frame in enumerate(stack):
            single = rx.receive(frame)
            assert np.array_equal(batched.symbols[t], single.symbols)
            assert np.array_equal(batched.bits[t], single.bits)
            assert np.array_equal(
                batched.channel_estimates[t].path_indices,
                single.channel_estimate.path_indices,
            )
            assert batched[t].num_symbols == single.num_symbols
