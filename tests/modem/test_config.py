"""Unit tests for the AquaModem configuration (Table 1)."""

from __future__ import annotations

import pytest

from repro.modem.config import AquaModemConfig


class TestTable1DerivedQuantities:
    @pytest.fixture(scope="class")
    def config(self) -> AquaModemConfig:
        return AquaModemConfig()

    def test_chips_per_symbol(self, config):
        assert config.chips_per_symbol == 56

    def test_sampling(self, config):
        assert config.sampling_interval_s == pytest.approx(0.1e-3)
        assert config.sampling_rate_hz == pytest.approx(10_000.0)

    def test_durations(self, config):
        assert config.symbol_duration_s == pytest.approx(11.2e-3)
        assert config.guard_duration_s == pytest.approx(11.2e-3)
        assert config.total_symbol_period_s == pytest.approx(22.4e-3)

    def test_sample_counts(self, config):
        assert config.samples_per_symbol == 112
        assert config.samples_per_guard == 112
        assert config.receive_vector_samples == 224

    def test_bits_and_rate(self, config):
        assert config.bits_per_symbol == 3
        assert config.raw_bit_rate_bps == pytest.approx(3 / 22.4e-3)

    def test_bandwidth_is_chip_rate(self, config):
        assert config.bandwidth_hz == pytest.approx(5_000.0)

    def test_multipath_spread_in_samples(self, config):
        assert config.multipath_spread_samples == 100

    def test_table1_rows_complete(self, config):
        rows = config.table1_rows()
        assert len(rows) == 9
        values = {symbol: value for _, symbol, value in rows}
        assert values["Ns"] == 112
        assert values["Rv"] == 224
        assert values["Tsym"] == pytest.approx(11.2)


class TestWaveformDesignRules:
    def test_default_design_is_valid(self):
        AquaModemConfig().validate_waveform_design()

    def test_symbol_shorter_than_multipath_rejected(self):
        config = AquaModemConfig(walsh_symbols=2, spreading_chips=3)  # Tsym = 1.2 ms
        with pytest.raises(ValueError, match="multipath"):
            config.validate_waveform_design()

    def test_sub_nyquist_sampling_rejected(self):
        config = AquaModemConfig(samples_per_chip=1)
        with pytest.raises(ValueError, match="Nyquist"):
            config.validate_waveform_design()


class TestValidation:
    def test_walsh_symbols_power_of_two(self):
        with pytest.raises(ValueError):
            AquaModemConfig(walsh_symbols=6)

    def test_positive_durations(self):
        with pytest.raises(ValueError):
            AquaModemConfig(chip_duration_s=0.0)

    def test_negative_guard_rejected(self):
        with pytest.raises(ValueError):
            AquaModemConfig(guard_factor=-0.5)

    def test_frozen(self):
        config = AquaModemConfig()
        with pytest.raises(Exception):
            config.walsh_symbols = 16  # type: ignore[misc]

    def test_alternative_configuration(self):
        config = AquaModemConfig(walsh_symbols=4, spreading_chips=15, chip_duration_s=0.1e-3)
        assert config.chips_per_symbol == 60
        assert config.samples_per_symbol == 120
        assert config.bits_per_symbol == 2
