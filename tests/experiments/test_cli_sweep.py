"""CLI smoke tests for ``repro scenarios`` and ``repro sweep``."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_axis_value, _parse_set_option, main
from repro.experiments.store import read_jsonl


class TestSetOptionParsing:
    def test_value_types(self):
        assert _parse_axis_value("3") == 3 and isinstance(_parse_axis_value("3"), int)
        assert _parse_axis_value("2.5") == 2.5
        assert _parse_axis_value("true") is True
        assert _parse_axis_value("DSSS") == "DSSS"

    def test_axis_with_values(self):
        assert _parse_set_option("word_length=4,8") == ("word_length", (4, 8))
        assert _parse_set_option("scheme=DSSS") == ("scheme", ("DSSS",))

    def test_malformed_option_rejected(self):
        with pytest.raises(ValueError, match="AXIS=V1,V2"):
            _parse_set_option("word_length")
        with pytest.raises(ValueError, match="AXIS=V1,V2"):
            _parse_set_option("=4,8")


class TestScenariosCommand:
    def test_lists_builtins(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("fixedpoint-bitwidth", "ipcore-parallelism", "modem-ser-vs-snr",
                     "platform-energy", "mp-refinement", "network-lifetime"):
            assert name in out


class TestIPCoreCommand:
    def test_ipcore_parallelism_table(self, capsys):
        assert main(["ipcore", "--parallelism", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        for level in ("1 ", "14 ", "112"):
            assert level in out
        assert "27776" in out and "248" in out
        assert "bit-identical at every P" in out

    def test_ipcore_batch_and_scalar_tables_match(self, capsys):
        assert main(["ipcore", "--trials", "2", "--word-length", "12"]) == 0
        batched = capsys.readouterr().out
        assert main(["ipcore", "--trials", "2", "--word-length", "12", "--no-batch"]) == 0
        scalar = capsys.readouterr().out
        strip = lambda text: text.replace("batched engine", "").replace(  # noqa: E731
            "scalar FC-block walk", ""
        )
        assert strip(batched) == strip(scalar)


class TestSweepCommand:
    def test_sweep_writes_results_and_caches(self, tmp_path, capsys):
        output = tmp_path / "out"
        cache = tmp_path / "cache"
        argv = [
            "sweep", "platform-energy",
            "--output", str(output), "--cache-dir", str(cache),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache hits: 0" in first

        records = read_jsonl(output / "results.jsonl")
        assert len(records) == 5
        assert (output / "results.csv").is_file()
        manifest = json.loads((output / "manifest.json").read_text())
        assert manifest["spec"]["scenario"] == "platform-energy"
        assert manifest["stats"]["num_trials"] == 5

        # second run: everything comes from the cache
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hits: 5 (100%)" in second
        assert read_jsonl(output / "results.jsonl") == records

    def test_sweep_set_override_and_no_cache(self, tmp_path, capsys):
        output = tmp_path / "out"
        argv = [
            "sweep", "network-lifetime",
            "--set", "report_interval_s=120.0",
            "--set", "topology=grid",
            "--set", "grid_rows=3", "--set", "grid_cols=3",
            "--no-cache", "--output", str(output),
        ]
        assert main(argv) == 0
        records = read_jsonl(output / "results.jsonl")
        assert len(records) == 5  # 5 zipped platforms x 1 interval x 1 topology
        assert {r["grid_rows"] for r in records} == {3}
        assert {r["topology"] for r in records} == {"grid"}

    def test_sweep_jobs_matches_serial(self, tmp_path, capsys):
        serial_out = tmp_path / "serial"
        parallel_out = tmp_path / "parallel"
        base = ["sweep", "fixedpoint-bitwidth", "--set", "word_length=6,8",
                "--replicates", "3", "--no-cache"]
        assert main(base + ["--output", str(serial_out)]) == 0
        assert main(base + ["--output", str(parallel_out), "--jobs", "2"]) == 0
        capsys.readouterr()
        assert read_jsonl(serial_out / "results.jsonl") == read_jsonl(
            parallel_out / "results.jsonl"
        )

    def test_unknown_scenario_exits_with_message(self, capsys):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["sweep", "nope"])

    def test_adaptive_refuses_another_runs_segments(self, tmp_path, capsys):
        output = tmp_path / "out"
        base = [
            "sweep", "modem-ser-vs-snr", "--adaptive",
            "--ci-width", "0.2", "--min-trials", "4", "--wave", "4",
            "--no-cache", "--output", str(output),
        ]
        assert main(base + ["--max-trials", "8"]) == 0
        capsys.readouterr()
        # same config resumes over the leftover segments without complaint
        assert main(base + ["--max-trials", "8"]) == 0
        capsys.readouterr()
        # a different ceiling re-numbers the trials: merging would corrupt
        with pytest.raises(SystemExit, match="different sweep"):
            main(base + ["--max-trials", "12"])

    def test_adaptive_unknown_metric_exits_with_candidates(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="never appeared.*symbol_error_rate"):
            main([
                "sweep", "modem-ser-vs-snr", "--adaptive", "--metric", "serr",
                "--ci-width", "0.2", "--max-trials", "8", "--min-trials", "4",
                "--no-cache", "--output", str(tmp_path / "out"),
            ])

    def test_typoed_axis_rejected_with_known_parameters(self, capsys):
        with pytest.raises(SystemExit, match="unknown axis 'platfrm'.*platform"):
            main(["sweep", "platform-energy", "--set", "platfrm=X"])

    def test_zipped_axis_set_selects_rows_keeping_pairing(self, tmp_path, capsys):
        output = tmp_path / "out"
        argv = [
            "sweep", "network-lifetime",
            "--set", "platform=MicroBlaze,Virtex-4 112FC 8bit",
            "--set", "report_interval_s=120.0",
            "--set", "topology=grid",
            "--no-cache", "--output", str(output),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        records = read_jsonl(output / "results.jsonl")
        assert [(r["platform"], r["energy_uj"]) for r in records] == [
            ("MicroBlaze", 2000.40), ("Virtex-4 112FC 8bit", 9.50),
        ]

    def test_zipped_axis_unknown_value_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit, match="not a value of zipped axis"):
            main(["sweep", "network-lifetime", "--set", "platform=Raspberry Pi"])
