"""Concurrency stress tests for the shared result cache.

The sweep service multiplexes many concurrent sweeps — executor threads plus
any worker processes they spawn — over one cache directory.  The contract
(see :mod:`repro.experiments.cache`) is atomic last-write-wins: under any
interleaving of writers and readers on overlapping keys, a reader sees either
a miss or one writer's *complete* record — never a torn file, never a crash.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.experiments import ResultCache

#: Keys shared by every process: contention is the point.
NUM_KEYS = 8
NUM_PROCESSES = 4
ROUNDS = 25


def _key(i: int) -> str:
    return f"{i:02d}" + "a" * 38


def _record(worker: int, i: int) -> dict:
    # big enough that a torn write could not accidentally parse as JSON
    return {"worker": worker, "key": i, "blob": "x" * 2048, "value": i * 1.5}


def _hammer(args: tuple[str, int]) -> list[str]:
    """One process's put/get loop; returns invariant violations (ideally none)."""
    cache_dir, worker = args
    cache = ResultCache(cache_dir)
    problems: list[str] = []
    for round_index in range(ROUNDS):
        for i in range(NUM_KEYS):
            try:
                cache.put("stress", _key(i), _record(worker, i))
                record = cache.get("stress", _key(i))
            except Exception as error:  # any crash is a contract violation
                problems.append(f"worker {worker} round {round_index}: {error!r}")
                continue
            if record is None:
                # a concurrent quarantine would surface here; with atomic
                # writes a just-written key can never read back as a miss
                problems.append(f"worker {worker} round {round_index}: miss after put")
            elif record.get("key") != i or len(record.get("blob", "")) != 2048:
                problems.append(
                    f"worker {worker} round {round_index}: torn read {record.keys()}"
                )
    return problems


class TestMultiprocessStress:
    # spawn children pay a full interpreter + numpy import each: two of them
    # prove the start method doesn't matter without doubling the suite time
    @pytest.mark.parametrize("method,processes", [("fork", NUM_PROCESSES), ("spawn", 2)])
    def test_overlapping_put_get_never_tears_or_crashes(self, tmp_path, method, processes):
        try:
            ctx = multiprocessing.get_context(method)
        except ValueError:
            pytest.skip(f"start method {method!r} unavailable")
        with ctx.Pool(processes) as pool:
            results = pool.map(
                _hammer, [(str(tmp_path), worker) for worker in range(processes)]
            )
        problems = [problem for worker in results for problem in worker]
        assert problems == []

        # afterwards: every key holds one writer's complete, valid record
        cache = ResultCache(tmp_path)
        assert cache.count("stress") == NUM_KEYS
        for i in range(NUM_KEYS):
            record = cache.get("stress", _key(i))
            assert record is not None
            assert record["key"] == i and len(record["blob"]) == 2048
            assert record["worker"] in range(NUM_PROCESSES)
        assert cache.stats.quarantined == 0

    def test_no_stray_temp_files_survive(self, tmp_path):
        ctx = multiprocessing.get_context()
        with ctx.Pool(2) as pool:
            pool.map(_hammer, [(str(tmp_path), worker) for worker in range(2)])
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_every_on_disk_file_is_valid_json(self, tmp_path):
        ctx = multiprocessing.get_context()
        with ctx.Pool(NUM_PROCESSES) as pool:
            pool.map(
                _hammer, [(str(tmp_path), worker) for worker in range(NUM_PROCESSES)]
            )
        for path in tmp_path.rglob("*.json"):
            payload = json.loads(path.read_text())  # parses completely
            assert isinstance(payload["record"], dict)
