"""Sequential-stopping sweeps: the rule, the waves, the fixed-run pairing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.intervals import BinomialAccumulator
from repro.experiments import (
    ResultCache,
    Scenario,
    SegmentedResultStore,
    get_scenario,
    register,
    run_adaptive_sweep,
    run_sweep,
)
from repro.experiments.adaptive import (
    BINOMIAL_COUNT_KEYS,
    AdaptiveConfig,
    _fold_record,
    _PointState,
)
from repro.experiments.spec import SweepSpec
from repro.experiments.store import ResultStore
from repro.telemetry.tracing import start_trace

COIN = "adaptive-coin"


def _coin_trial(params, seed):
    """One Bernoulli draw; paired across points via the shared seed stream."""
    rng = np.random.default_rng(seed)
    return {"success": float(rng.random() < params["p"])}


def _register_coin() -> None:
    register(Scenario(
        name=COIN,
        description="Bernoulli trials with a controllable proportion (test only)",
        layers=("test",),
        version="1",
        run_trial=_coin_trial,
        default_spec=SweepSpec(scenario=COIN, grid={"p": (0.0, 0.5)}),
    ))


@pytest.fixture(autouse=True)
def coin_scenario():
    _register_coin()


# With the Wilson interval on 0/n successes the half-width is
# z^2 / (2 (n + z^2)) with z^2 ~ 3.8415: 0.245 at n=4, 0.121 at n=12.  A
# ci_width of 0.13 therefore stops the p=0 point exactly at wave two
# (12 replicates) regardless of seeds — the convergence is deterministic.
CONVERGING = AdaptiveConfig(
    metric="success", ci_width=0.13, max_trials=64, min_trials=4, wave_trials=8
)


class TestAdaptiveConfig:
    def test_defaults_and_validation(self):
        config = AdaptiveConfig(metric="ser", ci_width=0.01, max_trials=100)
        assert config.method == "wilson"
        assert config.confidence == 0.95
        assert config.min_trials == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"metric": "", "ci_width": 0.1, "max_trials": 10},
            {"metric": "m", "ci_width": 0.0, "max_trials": 10},
            {"metric": "m", "ci_width": 1.5, "max_trials": 10},
            {"metric": "m", "ci_width": 0.1, "max_trials": 10, "confidence": 1.0},
            {"metric": "m", "ci_width": 0.1, "max_trials": 10, "method": "wald"},
            {"metric": "m", "ci_width": 0.1, "max_trials": 10, "min_trials": 0},
            {"metric": "m", "ci_width": 0.1, "max_trials": 10, "wave_trials": 0},
            {"metric": "m", "ci_width": 0.1, "max_trials": 3, "min_trials": 4},
            {"metric": "m", "ci_width": 0.1, "max_trials": 10, "successes_key": "k"},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kwargs)

    def test_round_trip_through_dict(self):
        config = AdaptiveConfig(
            metric="symbol_error_rate", ci_width=0.005, max_trials=512,
            confidence=0.99, method="clopper-pearson", min_trials=8,
            wave_trials=16, successes_key="errs", trials_key="sent",
        )
        assert AdaptiveConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_and_missing_keys(self):
        with pytest.raises(ValueError, match="unknown adaptive option"):
            AdaptiveConfig.from_dict(
                {"metric": "m", "ci_width": 0.1, "max_trials": 10, "warp": 9}
            )
        with pytest.raises(ValueError, match="require metric"):
            AdaptiveConfig.from_dict({"metric": "m"})

    def test_count_keys_resolution(self):
        # the modem SER metric has registered count columns
        assert "symbol_error_rate" in BINOMIAL_COUNT_KEYS
        implicit = AdaptiveConfig(
            metric="symbol_error_rate", ci_width=0.1, max_trials=10
        )
        assert implicit.count_keys == ("symbol_errors", "symbols_sent")
        explicit = AdaptiveConfig(
            metric="whatever", ci_width=0.1, max_trials=10,
            successes_key="k", trials_key="n",
        )
        assert explicit.count_keys == ("k", "n")
        assert CONVERGING.count_keys is None  # per-trial proportion fallback


class TestFoldRecord:
    def _state(self):
        return _PointState(ordinal=0, params={}, accumulator=BinomialAccumulator())

    def test_prefers_exact_count_columns(self):
        config = AdaptiveConfig(
            metric="rate", ci_width=0.1, max_trials=10,
            successes_key="k", trials_key="n",
        )
        state = self._state()
        _fold_record(state, {"rate": 0.9, "k": 3, "n": 100}, config)
        assert state.accumulator.successes == 3.0
        assert state.accumulator.trials == 100.0
        assert state.trials == 1

    def test_falls_back_to_the_metric_as_a_proportion(self):
        state = self._state()
        _fold_record(state, {"success": 1.0}, CONVERGING)
        assert state.accumulator.successes == 1.0
        assert state.accumulator.trials == 1.0

    def test_skips_records_without_evidence(self):
        state = self._state()
        _fold_record(state, {"other_metric": 5.0}, CONVERGING)
        _fold_record(state, {"success": "corrupt"}, CONVERGING)
        assert state.trials == 2  # realised trials still count
        assert state.metric_records == 0
        assert state.accumulator.trials == 0.0

    def test_rejects_non_proportion_metric_values(self):
        with pytest.raises(ValueError, match="not a proportion"):
            _fold_record(self._state(), {"success": 3.5}, CONVERGING)


class TestSequentialStopping:
    def test_certain_point_stops_early_uncertain_point_keeps_sampling(self):
        spec = get_scenario(COIN).spec
        result = run_adaptive_sweep(spec, CONVERGING)
        by_p = {point.params["p"]: point for point in result.points}

        certain = by_p[0.0]
        assert certain.stopped_early is True
        assert certain.reason == "converged"
        assert certain.trials == 12  # deterministic: see CONVERGING comment
        assert certain.interval.half_width <= CONVERGING.ci_width

        uncertain = by_p[0.5]
        assert uncertain.trials > certain.trials
        if uncertain.reason == "converged":
            assert uncertain.interval.half_width <= CONVERGING.ci_width

        assert result.stats.num_trials == sum(p.trials for p in result.points)
        assert result.stats.num_trials < result.ceiling_trials
        assert result.stats.executed == result.stats.num_trials  # no cache
        assert result.waves >= 2

    def test_tiny_ci_width_drives_every_point_to_the_ceiling(self):
        spec = get_scenario(COIN).spec
        config = AdaptiveConfig(
            metric="success", ci_width=0.01, max_trials=8,
            min_trials=4, wave_trials=4,
        )
        result = run_adaptive_sweep(spec, config)
        assert all(point.reason == "ceiling" for point in result.points)
        assert result.points_stopped_early == 0
        assert all(point.trials == 8 for point in result.points)
        assert result.stats.num_trials == result.ceiling_trials == 16

    def test_records_carry_canonical_ceiling_indexes(self):
        result = run_adaptive_sweep(get_scenario(COIN).spec, CONVERGING)
        indexes = [record["trial_index"] for record in result.records]
        assert indexes == sorted(indexes)
        by_p = {point.params["p"]: point for point in result.points}
        for record in result.records:
            ordinal = record["trial_index"] // CONVERGING.max_trials
            replicate = record["trial_index"] % CONVERGING.max_trials
            assert record["replicate"] == replicate
            assert replicate < by_p[record["p"]].trials
            assert ordinal == next(
                point.ordinal for point in result.points
                if point.params["p"] == record["p"]
            )

    def test_stats_payload_carries_the_adaptive_block(self):
        result = run_adaptive_sweep(get_scenario(COIN).spec, CONVERGING)
        payload = result.stats_payload()
        assert payload["num_trials"] == result.stats.num_trials
        adaptive = payload["adaptive"]
        assert adaptive["config"] == CONVERGING.to_dict()
        assert adaptive["points_total"] == 2
        assert adaptive["waves"] == result.waves
        assert adaptive["points_stopped_early"] == result.points_stopped_early
        assert adaptive["ceiling_trials"] == 128
        assert len(adaptive["points"]) == 2
        assert adaptive["points"][0]["interval"]["half_width"] is not None

    def test_result_is_a_sweep_result(self):
        # every fixed-count consumer (group_mean, the store) works unchanged
        result = run_adaptive_sweep(get_scenario(COIN).spec, CONVERGING)
        means = result.group_mean(by="p", metric="success")
        assert means[0.0] == 0.0
        assert 0.0 <= means[0.5] <= 1.0

    def test_metric_absent_from_every_record_raises_after_wave_one(self):
        # a typo'd metric must not silently sample every point to the ceiling
        config = AdaptiveConfig(
            metric="succes", ci_width=0.13, max_trials=64,
            min_trials=4, wave_trials=8,
        )
        with pytest.raises(ValueError, match="never appeared") as excinfo:
            run_adaptive_sweep(get_scenario(COIN).spec, config)
        # the error names the keys the user could have meant
        assert "success" in str(excinfo.value)


class TestFixedRunPairing:
    """An adaptive run is a byte-for-byte prefix of the ceiling fixed run."""

    def test_merged_store_matches_fixed_run_over_realised_trials(self, tmp_path):
        spec = get_scenario(COIN).spec
        store = SegmentedResultStore(tmp_path / "adaptive", flush_trials=8)
        adaptive = run_adaptive_sweep(spec, CONVERGING, store=store)
        merged = store.merge(
            spec=spec.to_dict(), stats=adaptive.stats_payload()
        )

        fixed = run_sweep(spec.with_seed(replicates=CONVERGING.max_trials))
        realised = {record["trial_index"] for record in adaptive.records}
        subset = [
            record for record in fixed.records if record["trial_index"] in realised
        ]
        written = ResultStore(tmp_path / "fixed").write(subset)
        assert merged["jsonl"].read_bytes() == written["jsonl"].read_bytes()
        assert merged["csv"].read_bytes() == written["csv"].read_bytes()

    def test_adaptive_and_fixed_sweeps_share_the_cache(self, tmp_path):
        spec = get_scenario(COIN).spec
        cache = ResultCache(tmp_path)
        adaptive = run_adaptive_sweep(spec, CONVERGING, cache=cache)
        assert adaptive.stats.executed == adaptive.stats.num_trials

        # a fixed run over the first min_trials replicates re-uses every trial
        fixed = run_sweep(spec.with_seed(replicates=CONVERGING.min_trials), cache=cache)
        assert fixed.stats.cache_hits == 2 * CONVERGING.min_trials
        assert fixed.stats.executed == 0

    def test_adaptive_rerun_is_all_cache_hits(self, tmp_path):
        spec = get_scenario(COIN).spec
        cache = ResultCache(tmp_path)
        first = run_adaptive_sweep(spec, CONVERGING, cache=cache)
        second = run_adaptive_sweep(spec, CONVERGING, cache=cache)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == first.stats.num_trials
        assert second.records == first.records
        assert [p.to_dict() for p in second.points] == [
            p.to_dict() for p in first.points
        ]


class TestSegmentsAndProgress:
    def test_waves_flush_to_labelled_segments(self, tmp_path):
        store = SegmentedResultStore(tmp_path, flush_trials=1000)
        result = run_adaptive_sweep(get_scenario(COIN).spec, CONVERGING, store=store)
        segments = store.segments()
        assert len(segments) == result.waves  # one flush per completed wave
        assert segments[0].name.endswith("-wave-000.jsonl")
        assert store.record_count() == result.stats.num_trials

    def test_run_sweep_store_hook_flushes_segments(self, tmp_path):
        spec = get_scenario(COIN).spec.with_seed(replicates=3)  # 6 trials
        store = SegmentedResultStore(tmp_path, flush_trials=2)
        result = run_sweep(spec, store=store)
        assert len(store.segments()) == 3
        assert list(store.iter_records()) == result.records

    def test_final_progress_event_reports_realised_totals(self):
        events = []
        result = run_adaptive_sweep(
            get_scenario(COIN).spec, CONVERGING, progress=events.append
        )
        assert events[-1].final is True
        assert events[-1].completed == result.stats.num_trials
        assert events[-1].executed == result.stats.executed
        # the ceiling is the only total known up front
        assert events[-1].total == result.ceiling_trials


class TestTelemetry:
    def test_traces_waves_and_counts_stopping_decisions(self):
        with start_trace() as tracer:
            result = run_adaptive_sweep(get_scenario(COIN).spec, CONVERGING)
        names = [record.name for record in tracer.records]
        assert names.count("adaptive.wave") == result.waves
        assert names.count("sweep") == 1
        # one trial span per realised trial — `repro trace --check` relies
        # on this equalling the manifest's stats.num_trials
        assert names.count("trial") == result.stats.num_trials

        metrics = result.stats.metrics
        assert metrics["adaptive.waves"] == result.waves
        assert metrics["adaptive.points_stopped_early"] == result.points_stopped_early
        assert metrics["adaptive.trials_saved"] == (
            result.ceiling_trials - result.stats.num_trials
        )
