"""Tests for the declarative sweep specifications."""

from __future__ import annotations

import pytest

from repro.experiments.spec import SeedPolicy, SweepSpec, stable_hash


def make_spec(**overrides) -> SweepSpec:
    defaults = dict(
        scenario="demo",
        grid={"a": (1, 2), "b": ("x", "y", "z")},
        zipped={"p": ("p0", "p1"), "q": (10.0, 20.0)},
        base={"c": 7},
        seed=SeedPolicy(base_seed=3, replicates=2),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestExpansion:
    def test_num_trials_counts_grid_zip_and_replicates(self):
        spec = make_spec()
        assert spec.num_trials == 2 * 3 * 2 * 2  # grid a * grid b * zip rows * replicates
        assert len(spec.expand()) == spec.num_trials

    def test_indices_are_sequential_and_order_deterministic(self):
        trials_a = make_spec().expand()
        trials_b = make_spec().expand()
        assert [t.index for t in trials_a] == list(range(len(trials_a)))
        assert trials_a == trials_b

    def test_params_merge_base_grid_and_zip(self):
        first = make_spec().expand()[0]
        assert first.params == {"c": 7, "a": 1, "b": "x", "p": "p0", "q": 10.0}

    def test_zipped_axes_vary_together(self):
        pairs = {(t.params["p"], t.params["q"]) for t in make_spec().expand()}
        assert pairs == {("p0", 10.0), ("p1", 20.0)}

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            make_spec(zipped={"p": ("p0",), "q": (1.0, 2.0)})

    def test_overlapping_parameter_names_rejected(self):
        with pytest.raises(ValueError, match="more than one"):
            make_spec(base={"a": 1})

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            make_spec(grid={"a": ()})


class TestSeedPolicy:
    def test_seeds_paired_across_axes_by_default(self):
        trials = make_spec().expand()
        by_replicate: dict[int, set[int]] = {}
        for trial in trials:
            by_replicate.setdefault(trial.replicate, set()).add(trial.seed)
        # all trials of one replicate share a seed; replicates differ
        assert all(len(seeds) == 1 for seeds in by_replicate.values())
        assert len({next(iter(s)) for s in by_replicate.values()}) == 2

    def test_vary_with_gives_axis_values_independent_streams(self):
        spec = make_spec(seed=SeedPolicy(base_seed=3, replicates=1, vary_with=("a",)))
        seeds_by_a: dict[int, set[int]] = {}
        for trial in spec.expand():
            seeds_by_a.setdefault(trial.params["a"], set()).add(trial.seed)
        assert len(seeds_by_a[1]) == 1 and len(seeds_by_a[2]) == 1
        assert seeds_by_a[1] != seeds_by_a[2]

    def test_seed_independent_of_expansion_order(self):
        policy = SeedPolicy(base_seed=5, replicates=1, vary_with=("w",))
        assert policy.trial_seed(0, {"w": 8, "other": 1}) == policy.trial_seed(0, {"w": 8})

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SeedPolicy(replicates=0)
        with pytest.raises(ValueError):
            SeedPolicy(base_seed=-1)


class TestOverrides:
    def test_with_axis_replaces_grid_axis(self):
        spec = make_spec().with_axis("a", (9, 10, 11))
        assert spec.grid["a"] == (9, 10, 11)
        assert spec.num_trials == 3 * 3 * 2 * 2

    def test_with_axis_single_value_folds_into_base(self):
        spec = make_spec().with_axis("a", (9,))
        assert "a" not in spec.grid
        assert spec.base["a"] == 9

    def test_with_axis_promotes_base_key(self):
        spec = make_spec().with_axis("c", (1, 2))
        assert spec.grid["c"] == (1, 2)
        assert "c" not in spec.base

    def test_with_axis_rejects_zipped_axis(self):
        with pytest.raises(ValueError, match="zipped"):
            make_spec().with_axis("p", ("p9",))

    def test_select_zipped_keeps_pairing_and_order(self):
        spec = make_spec().select_zipped("p", ("p1", "p0"))
        assert spec.zipped == {"p": ("p1", "p0"), "q": (20.0, 10.0)}

    def test_select_zipped_rejects_unknown_value(self):
        with pytest.raises(ValueError, match="not a value"):
            make_spec().select_zipped("p", ("p9",))
        with pytest.raises(ValueError, match="not a zipped axis"):
            make_spec().select_zipped("a", (1,))

    def test_with_seed_partial_override(self):
        spec = make_spec().with_seed(replicates=5)
        assert spec.seed.replicates == 5
        assert spec.seed.base_seed == 3


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = make_spec()
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_preserves_expansion(self):
        spec = make_spec()
        restored = SweepSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.expand() == spec.expand()

    def test_stable_hash_ignores_key_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})
