"""CLI tests for ``repro sweep --trace/--progress`` and ``repro trace``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry.tracing import read_trace, validate_trace


@pytest.fixture()
def traced_sweep(tmp_path, capsys):
    """One traced platform-energy sweep; yields its output directory."""
    output = tmp_path / "out"
    argv = ["sweep", "platform-energy", "--no-cache",
            "--output", str(output), "--trace"]
    assert main(argv) == 0
    capsys.readouterr()
    return output


class TestSweepTraceFlag:
    def test_writes_valid_trace_next_to_results(self, traced_sweep):
        trace_path = traced_sweep / "trace.jsonl"
        assert trace_path.is_file()
        records = read_trace(trace_path)
        assert validate_trace(records) == []
        manifest = json.loads((traced_sweep / "manifest.json").read_text())
        trial_spans = sum(1 for r in records if r.name == "trial")
        assert trial_spans == manifest["stats"]["num_trials"]

    def test_trace_path_is_reported(self, tmp_path, capsys):
        output = tmp_path / "out"
        assert main(["sweep", "platform-energy", "--no-cache",
                     "--output", str(output), "--trace"]) == 0
        assert f"trace: {output / 'trace.jsonl'}" in capsys.readouterr().out

    def test_untraced_sweep_writes_no_trace(self, tmp_path, capsys):
        output = tmp_path / "out"
        assert main(["sweep", "platform-energy", "--no-cache",
                     "--output", str(output)]) == 0
        capsys.readouterr()
        assert not (output / "trace.jsonl").exists()

    def test_manifest_metrics_folded_when_traced(self, traced_sweep):
        manifest = json.loads((traced_sweep / "manifest.json").read_text())
        metrics = manifest["stats"]["metrics"]
        assert metrics["sweep.trials_executed"] == 5


class TestSweepProgressFlag:
    def test_progress_heartbeats_on_stderr(self, tmp_path, capsys):
        output = tmp_path / "out"
        assert main(["sweep", "platform-energy", "--no-cache",
                     "--output", str(output), "--progress"]) == 0
        err = capsys.readouterr().err
        assert "progress: 0/5" in err
        assert "done in" in err


class TestTraceCommand:
    def test_summary_report(self, traced_sweep, capsys):
        assert main(["trace", str(traced_sweep / "trace.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "Span tree" in out
        assert "sweep.execute" in out
        assert "Slowest 'trial' spans" in out

    def test_check_passes_and_cross_checks_manifest(self, traced_sweep, capsys):
        assert main(["trace", str(traced_sweep / "trace.jsonl"), "--check"]) == 0
        out = capsys.readouterr().out
        assert "trace check OK" in out
        assert "manifest cross-check: 5 trial spans" in out

    def test_check_fails_on_corrupt_tree(self, traced_sweep, capsys):
        trace_path = traced_sweep / "trace.jsonl"
        lines = trace_path.read_text().splitlines()
        payload = json.loads(lines[0])
        payload["parent_id"] = "ghost.99"
        lines[0] = json.dumps(payload)
        trace_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SystemExit, match="trace check FAILED"):
            main(["trace", str(trace_path), "--check"])

    def test_check_fails_on_trial_count_mismatch(self, traced_sweep):
        trace_path = traced_sweep / "trace.jsonl"
        kept = [line for line in trace_path.read_text().splitlines()
                if json.loads(line)["name"] != "trial"]
        trace_path.write_text("\n".join(kept) + "\n")
        with pytest.raises(SystemExit, match="manifest records num_trials=5"):
            main(["trace", str(trace_path), "--check"])

    def test_missing_file_exits_cleanly(self):
        with pytest.raises(SystemExit, match="cannot read trace file"):
            main(["trace", "/nonexistent/trace.jsonl"])


class TestVerbosityFlags:
    def test_verbose_and_quiet_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["-v", "-q", "scenarios"])

    def test_verbose_emits_sweep_diagnostics(self, tmp_path, capsys, caplog):
        output = tmp_path / "out"
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro.experiments.runner"):
            assert main(["--verbose", "sweep", "platform-energy", "--no-cache",
                         "--output", str(output)]) == 0
        assert any("cache scan done" in message for message in caplog.messages)
