"""Atomicity tests for the sweep artefact writes (store, export, traces).

An interrupted write must leave the previous complete file — or no file —
never a torn one.  These tests inject failures mid-write and assert the
destination is untouched and no temp files leak.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import write_csv
from repro.experiments.store import ResultStore, read_jsonl, write_jsonl
from repro.utils.atomic import atomic_write_text, atomic_writer


class _Boom(Exception):
    pass


def _exploding_records(good: int):
    """Yield ``good`` records, then blow up mid-stream."""
    for i in range(good):
        yield {"trial_index": i, "value": i * 2.0}
    raise _Boom("simulated crash mid-write")


class TestAtomicWriter:
    def test_writes_and_returns_path(self, tmp_path):
        path = atomic_write_text(tmp_path / "deep" / "file.txt", "payload")
        assert path.read_text() == "payload"

    def test_failure_leaves_previous_version(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "version 1")
        with pytest.raises(_Boom):
            atomic_writer(target, lambda handle: (_ for _ in ()).throw(_Boom()))
        assert target.read_text() == "version 1"

    def test_failure_leaves_no_file_when_none_existed(self, tmp_path):
        target = tmp_path / "fresh.txt"
        with pytest.raises(_Boom):
            atomic_writer(target, lambda handle: (_ for _ in ()).throw(_Boom()))
        assert not target.exists()

    def test_no_temp_files_leak(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "ok")
        with pytest.raises(_Boom):
            atomic_writer(target, lambda handle: (_ for _ in ()).throw(_Boom()))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["file.txt"]


class TestWriteJsonlAtomicity:
    def test_round_trip(self, tmp_path):
        records = [{"a": 1}, {"a": 2}]
        path = write_jsonl(tmp_path / "results.jsonl", records)
        assert read_jsonl(path) == records

    def test_interrupted_write_preserves_previous_results(self, tmp_path):
        target = tmp_path / "results.jsonl"
        original = [{"trial_index": 0, "value": 1.0}]
        write_jsonl(target, original)
        with pytest.raises(_Boom):
            write_jsonl(target, _exploding_records(good=3))
        # the torn write never reached the destination
        assert read_jsonl(target) == original
        assert list(tmp_path.glob("*.tmp")) == []

    def test_interrupted_first_write_leaves_nothing(self, tmp_path):
        target = tmp_path / "results.jsonl"
        with pytest.raises(_Boom):
            write_jsonl(target, _exploding_records(good=2))
        assert not target.exists()


class TestWriteCsvAtomicity:
    def test_interrupted_write_preserves_previous_csv(self, tmp_path):
        target = tmp_path / "results.csv"
        write_csv(target, ["a"], [[1], [2]])
        before = target.read_text()

        def _exploding_rows():
            yield [3]
            raise _Boom()

        with pytest.raises(_Boom):
            write_csv(target, ["a"], _exploding_rows())
        assert target.read_text() == before


class TestManifestAtomicity:
    def test_manifest_is_complete_json(self, tmp_path):
        store = ResultStore(tmp_path)
        written = store.write(
            [{"trial_index": 0, "value": 1.0}],
            spec={"scenario": "s"},
            stats={"executed": 1},
        )
        manifest = json.loads(written["manifest"].read_text())
        assert manifest == {"spec": {"scenario": "s"}, "stats": {"executed": 1}}

    def test_unserialisable_stats_leave_previous_manifest(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write([{"a": 1}], spec={"scenario": "s"}, stats={"executed": 1})
        before = (tmp_path / "manifest.json").read_text()
        with pytest.raises(TypeError):
            store.write([{"a": 1}], spec={"scenario": "s"}, stats={"bad": object()})
        assert (tmp_path / "manifest.json").read_text() == before
        assert list(tmp_path.glob("*.tmp")) == []
