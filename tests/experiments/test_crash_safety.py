"""``kill -9`` crash safety: a killed sweep leaves no torn artefacts.

The acceptance contract for the sweep service (and any long-running user of
the artifact layer): SIGKILL a sweep mid-run, and

* every cache file on disk is a complete, valid record (atomic writes mean
  the kill can only lose the in-flight temp file, never corrupt a ``.json``);
* a resubmission of the same spec completes, picking the already-executed
  trials up from the cache.

SIGKILL runs no ``finally`` blocks and no atexit hooks — this is the
strongest interruption the filesystem contract has to survive.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import ResultCache, Scenario, register, run_sweep, trial_key
from repro.experiments.cache import code_version_tag
from repro.experiments.spec import SweepSpec

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: The sweep the child runs: slow enough to be killed mid-flight.
NUM_TRIALS = 40
SCENARIO = "crash-test"

CHILD_SCRIPT = f"""
import sys, time
sys.path.insert(0, {SRC!r})
from repro.experiments import Scenario, register, ResultCache, run_sweep
from repro.experiments.spec import SweepSpec

def run_trial(params, seed):
    time.sleep(0.05)
    return {{"value": params["x"] * 2.0}}

register(Scenario(
    name={SCENARIO!r}, description="crash-safety probe", layers=("test",),
    version="1", run_trial=run_trial,
    default_spec=SweepSpec(scenario={SCENARIO!r},
                           grid={{"x": tuple(range({NUM_TRIALS}))}}),
))
from repro.experiments import get_scenario
run_sweep(get_scenario({SCENARIO!r}).spec, cache=ResultCache(sys.argv[1]))
"""


def _register_parent_side() -> SweepSpec:
    """The same scenario (same name/version) in this process, for the resume."""

    def run_trial(params, seed):
        return {"value": params["x"] * 2.0}

    scenario = register(Scenario(
        name=SCENARIO, description="crash-safety probe", layers=("test",),
        version="1", run_trial=run_trial,
        default_spec=SweepSpec(scenario=SCENARIO,
                               grid={"x": tuple(range(NUM_TRIALS))}),
    ))
    return scenario.spec


class TestKillDashNine:
    def test_sigkill_leaves_no_torn_cache_and_resume_completes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, str(cache_dir)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # wait until some trials landed, then kill -9 mid-sweep
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                done = len(list(cache_dir.rglob("*.json"))) if cache_dir.exists() else 0
                if done >= 3:
                    break
                if child.poll() is not None:
                    pytest.fail("child sweep finished before it could be killed")
                time.sleep(0.02)
            else:
                pytest.fail("child sweep never wrote a cache file")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL

        # 1) nothing torn: every surviving cache file is complete, valid JSON
        cached_files = list(cache_dir.rglob("*.json"))
        assert cached_files, "the kill window saw >= 3 files"
        for path in cached_files:
            payload = json.loads(path.read_text())
            assert isinstance(payload["record"], dict)
        survivors = len(cached_files)
        assert survivors < NUM_TRIALS  # it really died mid-run

        # 2) a resubmitted sweep completes, resuming from the cached trials
        spec = _register_parent_side()
        cache = ResultCache(cache_dir)
        resumed = run_sweep(spec, cache=cache)
        assert resumed.stats.num_trials == NUM_TRIALS
        assert resumed.stats.cache_hits == survivors
        assert resumed.stats.executed == NUM_TRIALS - survivors
        assert [r["x"] for r in resumed.records] == list(range(NUM_TRIALS))
        # and nothing was quarantined along the way: no torn files existed
        assert cache.stats.quarantined == 0
        assert list(cache_dir.rglob("*.corrupt")) == []

    def test_cached_records_match_uninterrupted_run(self, tmp_path):
        """Trials cached by the killed child byte-match a fresh in-process run."""
        spec = _register_parent_side()
        fresh = run_sweep(spec)
        cache_dir = tmp_path / "cache"
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, str(cache_dir)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            while len(list(cache_dir.rglob("*.json")) if cache_dir.exists() else []) < 2:
                assert child.poll() is None, "child finished too fast"
                time.sleep(0.02)
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)

        cache = ResultCache(cache_dir)
        code_tag = code_version_tag()
        seen = 0
        for trial in spec.expand():
            key = trial_key(SCENARIO, "1", trial.params, trial.seed, code_tag)
            record = cache.get(SCENARIO, key)
            if record is not None:
                seen += 1
                assert record == fresh.records[trial.index]
        assert seen >= 2
