"""Tests for the content-addressed result cache (hit/miss, keys, resume)."""

from __future__ import annotations

import pytest

from repro.experiments import ResultCache, get_scenario, run_sweep, trial_key


class TestTrialKey:
    def test_stable_under_param_order(self):
        a = trial_key("s", "1", {"x": 1, "y": 2}, seed=3, code_tag="t")
        b = trial_key("s", "1", {"y": 2, "x": 1}, seed=3, code_tag="t")
        assert a == b

    def test_sensitive_to_every_component(self):
        base = dict(scenario="s", scenario_version="1", params={"x": 1}, seed=3, code_tag="t")
        key = trial_key(**base)
        assert key != trial_key(**{**base, "scenario": "s2"})
        assert key != trial_key(**{**base, "scenario_version": "2"})
        assert key != trial_key(**{**base, "params": {"x": 2}})
        assert key != trial_key(**{**base, "seed": 4})
        assert key != trial_key(**{**base, "code_tag": "t2"})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("scn", "aa" + "0" * 38) is None
        cache.put("scn", "aa" + "0" * 38, {"value": 1.5})
        assert cache.get("scn", "aa" + "0" * 38) == {"value": 1.5}
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_contains_does_not_count(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("scn", "bb" + "0" * 38, {"value": 2})
        assert cache.contains("scn", "bb" + "0" * 38)
        assert not cache.contains("scn", "cc" + "0" * 38)
        assert cache.stats.lookups == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("scn", "dd" + "0" * 38, {"value": 3})
        path.write_text("{truncated")
        assert cache.get("scn", "dd" + "0" * 38) is None


class TestCorruptRecovery:
    """Malformed files are quarantined; get/contains/count always agree."""

    KEY = "ee" + "0" * 38

    #: Payloads that are valid JSON but not a well-formed cache record —
    #: the shapes that used to crash ``get`` with an uncaught KeyError.
    MALFORMED = (
        "{}",                       # no "record" key at all
        '{"record": null}',         # present but not a dict
        '{"record": [1, 2]}',       # present but a list
        '"just a string"',          # payload is not even an object
        "[]",                       # top level is a list
    )

    def _poison(self, cache, text):
        path = cache.put("scn", self.KEY, {"value": 1})
        path.write_text(text)
        return path

    @pytest.mark.parametrize("text", MALFORMED)
    def test_get_treats_malformed_json_as_miss(self, tmp_path, text):
        cache = ResultCache(tmp_path)
        self._poison(cache, text)
        assert cache.get("scn", self.KEY) is None
        assert cache.stats.misses == 1

    @pytest.mark.parametrize("text", MALFORMED + ("{torn", ""))
    def test_get_quarantines_bad_files(self, tmp_path, text):
        cache = ResultCache(tmp_path)
        path = self._poison(cache, text)
        cache.get("scn", self.KEY)
        assert not path.exists()
        corrupt = path.with_suffix(".corrupt")
        assert corrupt.exists() and corrupt.read_text() == text
        assert cache.stats.quarantined == 1

    @pytest.mark.parametrize("text", MALFORMED + ("{torn",))
    def test_contains_agrees_with_get(self, tmp_path, text):
        cache = ResultCache(tmp_path)
        self._poison(cache, text)
        assert cache.contains("scn", self.KEY) is False
        assert cache.get("scn", self.KEY) is None
        assert cache.stats.lookups == 1  # contains never counts hit/miss

    def test_count_excludes_quarantined_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("scn", "aa" + "0" * 38, {"value": 1})
        self._poison(cache, "{}")
        assert cache.count("scn") == 2
        assert cache.get("scn", self.KEY) is None  # quarantines the bad file
        assert cache.count("scn") == 1
        assert cache.contains("scn", "aa" + "0" * 38)

    def test_put_after_quarantine_restores_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._poison(cache, "{}")
        assert cache.get("scn", self.KEY) is None
        cache.put("scn", self.KEY, {"value": 7})
        assert cache.get("scn", self.KEY) == {"value": 7}
        assert cache.contains("scn", self.KEY)

    def test_valid_record_with_extra_keys_still_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("scn", self.KEY, {"value": 9})
        # extra envelope keys are tolerated; only "record" must be well-formed
        path.write_text('{"key": "x", "record": {"value": 9}, "extra": 1}')
        assert cache.get("scn", self.KEY) == {"value": 9}


class TestSweepCaching:
    def test_rerun_hits_for_every_trial(self, tmp_path):
        spec = get_scenario("platform-energy").spec
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        again = run_sweep(spec, cache=cache)
        assert first.stats.cache_hits == 0
        assert again.stats.cache_hits == again.stats.num_trials
        assert again.stats.executed == 0
        assert again.records == first.records

    def test_resume_after_interrupt_runs_only_missing_trials(self, tmp_path):
        """A partial run's cached trials survive; the full sweep picks them up."""
        full = get_scenario("network-lifetime").spec
        partial = full.with_axis("report_interval_s", (60.0,))
        cache = ResultCache(tmp_path)
        head = run_sweep(partial, cache=cache)  # the "interrupted" prefix
        resumed = run_sweep(full, cache=cache)
        assert resumed.stats.cache_hits == head.stats.num_trials
        assert resumed.stats.executed == resumed.stats.num_trials - head.stats.num_trials
        # the cached records appear verbatim in the resumed results
        cached = [r for r in resumed.records if r["report_interval_s"] == 60.0]
        assert cached == head.records

    def test_no_cache_reexecutes(self, tmp_path):
        spec = get_scenario("platform-energy").spec
        first = run_sweep(spec)
        second = run_sweep(spec)
        assert second.stats.executed == second.stats.num_trials
        assert second.records == first.records
