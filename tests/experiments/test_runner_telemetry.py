"""Telemetry through the sweep engine: spans, metrics, progress, stats.

The contract the CI smoke step gates on: a traced sweep's records form one
valid span tree rooted at ``sweep``, the number of ``trial`` spans equals
``SweepStats.num_trials`` (executed or cached, serial or pooled), and with
no tracer active a sweep records nothing at all.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import ResultCache, get_scenario, run_sweep
from repro.experiments.runner import SweepStats
from repro.telemetry import start_trace, validate_trace


@pytest.fixture()
def energy_spec():
    """The cheapest built-in spec: 5 closed-form platform-energy trials."""
    return get_scenario("platform-energy").spec


def _spans(tracer, name):
    return [record for record in tracer.records if record.name == name]


class TestTracedSerialSweep:
    def test_span_tree_and_trial_count(self, energy_spec):
        with start_trace() as tracer:
            result = run_sweep(energy_spec, jobs=1)
        assert validate_trace(tracer.records) == []
        (sweep,) = _spans(tracer, "sweep")
        (scan,) = _spans(tracer, "sweep.cache_scan")
        (execute,) = _spans(tracer, "sweep.execute")
        assert sweep.parent_id is None
        assert scan.parent_id == sweep.span_id
        assert execute.parent_id == sweep.span_id
        trials = _spans(tracer, "trial")
        assert len(trials) == result.stats.num_trials
        assert all(trial.parent_id == execute.span_id for trial in trials)
        assert sweep.attributes["scenario"] == "platform-energy"

    def test_stats_fold_metric_deltas(self, energy_spec):
        with start_trace():
            result = run_sweep(energy_spec, jobs=1)
        metrics = result.stats.metrics
        assert metrics is not None
        assert metrics["sweep.trials_executed"] == result.stats.executed
        assert json.dumps(result.stats.to_dict())  # manifest-safe

    def test_untraced_stats_have_no_metrics(self, energy_spec):
        result = run_sweep(energy_spec, jobs=1)
        assert result.stats.metrics is None
        assert "metrics" not in result.stats.to_dict()


class TestTracedParallelSweep:
    def test_worker_spans_merge_under_execute(self, energy_spec):
        with start_trace() as tracer:
            result = run_sweep(energy_spec, jobs=2)
        assert result.stats.jobs == 2
        assert validate_trace(tracer.records) == []
        (execute,) = _spans(tracer, "sweep.execute")
        trials = _spans(tracer, "trial")
        assert len(trials) == result.stats.num_trials
        # every worker trial span was adopted under the parent's execute span
        assert all(trial.parent_id == execute.span_id for trial in trials)
        # spans from at least two distinct pids merged without id collisions
        pids = {trial.span_id.split(".")[0] for trial in trials}
        assert len(pids) >= 1  # >= 2 when the pool truly fans out; never 0
        assert len({trial.span_id for trial in trials}) == len(trials)

    def test_records_match_untraced_run(self, energy_spec):
        with start_trace():
            traced = run_sweep(energy_spec, jobs=2)
        bare = run_sweep(energy_spec, jobs=2)
        assert traced.records == bare.records


class TestCacheHitsKeepTrialCount:
    def test_cached_trials_emit_zero_duration_spans(self, energy_spec, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(energy_spec, cache=cache)
        with start_trace() as tracer:
            rerun = run_sweep(energy_spec, cache=cache)
        assert rerun.stats.cache_hits == rerun.stats.num_trials
        trials = _spans(tracer, "trial")
        assert len(trials) == rerun.stats.num_trials
        assert all(trial.attributes.get("cache_hit") for trial in trials)
        assert all(trial.duration_s < 0.01 for trial in trials)  # empty body
        assert validate_trace(tracer.records) == []
        # the sweep's metric delta attributes the hits to the cache counters
        assert rerun.stats.metrics["sweep.trials_cached"] == rerun.stats.num_trials


class TestDisabledPath:
    def test_sweep_without_tracer_records_nothing(self, energy_spec):
        with start_trace() as probe:
            pass  # closed before the sweep: nothing below may record into it
        result = run_sweep(energy_spec, jobs=1)
        assert probe.records == []
        assert result.stats.metrics is None

    def test_parallel_sweep_without_tracer_records_nothing(self, energy_spec):
        with start_trace() as probe:
            pass
        run_sweep(energy_spec, jobs=2)
        assert probe.records == []


class TestProgressCallback:
    def test_first_and_final_events(self, energy_spec):
        events = []
        result = run_sweep(energy_spec, progress=events.append)
        assert events[0].completed == 0  # after the cache scan, before trials
        assert events[-1].final is True
        assert events[-1].completed == result.stats.num_trials
        assert events[-1].executed == result.stats.executed

    def test_cache_complete_sweep_still_reports(self, energy_spec, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(energy_spec, cache=cache)
        events = []
        rerun = run_sweep(energy_spec, cache=cache, progress=events.append)
        assert events[0].cache_hits == rerun.stats.num_trials
        assert events[-1].final is True
        assert events[-1].fraction == 1.0

    def test_throttle_interval_passes_through(self, energy_spec):
        # a huge interval suppresses intermediate events but never the ends
        events = []
        run_sweep(energy_spec, progress=events.append, progress_interval_s=3600.0)
        assert [event.final for event in events] == [False, False, True] or [
            event.final for event in events
        ] == [False, True]


class TestSweepStatsSerialisation:
    def test_zero_elapsed_rate_serialises_as_null(self):
        stats = SweepStats(num_trials=5, executed=5, cache_hits=0, jobs=1, elapsed_s=0.0)
        assert stats.trials_per_second == float("inf")  # the in-memory property
        payload = stats.to_dict()
        assert payload["trials_per_second"] is None
        assert "Infinity" not in json.dumps(payload)

    def test_normal_rate_survives(self):
        stats = SweepStats(num_trials=6, executed=6, cache_hits=0, jobs=1, elapsed_s=2.0)
        assert stats.to_dict()["trials_per_second"] == 3.0

    def test_metrics_key_only_when_present(self):
        bare = SweepStats(num_trials=1, executed=1, cache_hits=0, jobs=1, elapsed_s=1.0)
        assert "metrics" not in bare.to_dict()
        with_metrics = SweepStats(
            num_trials=1, executed=1, cache_hits=0, jobs=1, elapsed_s=1.0,
            metrics={"sweep.trials_executed": 1},
        )
        assert with_metrics.to_dict()["metrics"] == {"sweep.trials_executed": 1}
