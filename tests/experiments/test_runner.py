"""Tests for the sweep engine: determinism, parallelism, record hygiene."""

from __future__ import annotations

import pytest

from repro.experiments import ResultCache, get_scenario, run_sweep
from repro.experiments.runner import _chunk_size, plain_value
from repro.experiments.store import read_jsonl, tidy_headers
from repro.experiments.store import ResultStore


@pytest.fixture(scope="module")
def small_bitwidth_spec():
    """A cheap but non-trivial spec: 2 word lengths x 3 replicates."""
    return (
        get_scenario("fixedpoint-bitwidth").spec
        .with_axis("word_length", (6, 8))
        .with_seed(replicates=3)
    )


class TestSerialExecution:
    def test_records_in_canonical_order_with_identity_columns(self, small_bitwidth_spec):
        result = run_sweep(small_bitwidth_spec, jobs=1)
        assert [r["trial_index"] for r in result.records] == list(range(6))
        assert all(r["scenario"] == "fixedpoint-bitwidth" for r in result.records)
        assert result.stats.jobs == 1
        assert result.stats.executed == 6

    def test_metrics_are_plain_scalars(self, small_bitwidth_spec):
        result = run_sweep(small_bitwidth_spec, jobs=1)
        for record in result.records:
            for value in record.values():
                assert value is None or isinstance(value, (bool, int, float, str))

    def test_deterministic_across_runs(self, small_bitwidth_spec):
        assert run_sweep(small_bitwidth_spec).records == run_sweep(small_bitwidth_spec).records


class TestParallelExecution:
    def test_parallel_equals_serial(self, small_bitwidth_spec):
        serial = run_sweep(small_bitwidth_spec, jobs=1)
        parallel = run_sweep(small_bitwidth_spec, jobs=3)
        assert parallel.records == serial.records
        assert parallel.stats.jobs == 3

    def test_small_batches_fall_back_to_serial(self):
        spec = get_scenario("platform-energy").spec.with_axis(
            "platform", ("MicroBlaze", "TI C6713 DSP")
        )
        result = run_sweep(spec, jobs=8)
        assert result.stats.jobs == 1  # 2 trials < MIN_TRIALS_FOR_POOL

    def test_parallel_with_cache_stores_all_trials(self, small_bitwidth_spec, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(small_bitwidth_spec, jobs=3, cache=cache)
        assert cache.count("fixedpoint-bitwidth") == 6
        rerun = run_sweep(small_bitwidth_spec, jobs=3, cache=cache)
        assert rerun.stats.cache_hits == 6

    def test_explicit_chunk_size(self, small_bitwidth_spec):
        serial = run_sweep(small_bitwidth_spec, jobs=1)
        chunked = run_sweep(small_bitwidth_spec, jobs=2, chunk_size=2)
        assert chunked.records == serial.records


class TestHelpers:
    def test_chunk_size_targets_four_chunks_per_worker(self):
        assert _chunk_size(pending=64, jobs=4) == 4
        assert _chunk_size(pending=3, jobs=4) == 1

    def test_plain_rejects_compound_values(self):
        with pytest.raises(TypeError, match="flat dicts"):
            plain_value([1, 2, 3])

    def test_unknown_scenario_raises(self):
        from repro.experiments.spec import SweepSpec

        with pytest.raises(KeyError, match="unknown scenario"):
            run_sweep(SweepSpec(scenario="does-not-exist"))

    def test_group_mean(self, small_bitwidth_spec):
        result = run_sweep(small_bitwidth_spec)
        means = result.group_mean(by="word_length", metric="normalized_error")
        assert set(means) == {6, 8}
        assert all(value >= 0 for value in means.values())


def _register_poison_scenario(name: str, poison: int) -> None:
    """Register a scenario whose trial raises for ``x == poison``."""
    from repro.experiments import Scenario, register
    from repro.experiments.spec import SweepSpec

    def run_trial(params, seed):
        if params["x"] == poison:
            raise RuntimeError(f"poisoned trial x={poison}")
        return {"doubled": params["x"] * 2.0}

    register(Scenario(
        name=name,
        description="raises mid-sweep (test only)",
        layers=("test",),
        version="1",
        run_trial=run_trial,
        default_spec=SweepSpec(scenario=name, grid={"x": (0, 1, 2, 3, 4, 5)}),
    ))


class TestRaisingTrial:
    """A trial raising mid-pool must not lose the final heartbeat or the
    partial cache flush (the sweep service polls for a terminal event)."""

    def test_final_progress_event_fires_on_serial_failure(self, tmp_path):
        _register_poison_scenario("poison-serial", poison=3)
        spec = get_scenario("poison-serial").spec
        events = []
        cache = ResultCache(tmp_path)
        with pytest.raises(RuntimeError, match="poisoned"):
            run_sweep(spec, cache=cache, progress=events.append)
        assert events, "no progress events delivered"
        final = events[-1]
        assert final.final is True
        # trials 0..2 completed (serial, canonical order) and were flushed
        assert final.executed == 3
        assert cache.count("poison-serial") == 3

    def test_partial_results_resume_from_cache(self, tmp_path):
        _register_poison_scenario("poison-resume", poison=5)
        spec = get_scenario("poison-resume").spec
        cache = ResultCache(tmp_path)
        with pytest.raises(RuntimeError):
            run_sweep(spec, cache=cache)
        # drop the poisoned point: the surviving trials are all cache hits
        healthy = spec.with_axis("x", (0, 1, 2, 3, 4))
        resumed = run_sweep(healthy, cache=cache)
        assert resumed.stats.cache_hits == 5
        assert resumed.stats.executed == 0

    def test_final_progress_event_fires_on_pool_failure(self, tmp_path):
        # the default (fork) context lets workers see the locally-registered
        # scenario; the raise propagates out of imap_unordered
        _register_poison_scenario("poison-pool", poison=0)
        spec = get_scenario("poison-pool").spec
        events = []
        with pytest.raises(RuntimeError, match="poisoned"):
            run_sweep(spec, jobs=2, progress=events.append)
        assert events[-1].final is True


class TestHeterogeneousAggregation:
    """Regressions for the heterogeneous-record aggregation bugs."""

    def test_group_mean_skips_records_missing_either_key(self):
        from repro.experiments.runner import SweepResult
        from repro.experiments.spec import SweepSpec

        result = SweepResult(
            spec=SweepSpec(scenario="hetero"),
            records=[
                {"snr_db": 0, "ser": 0.4},
                {"snr_db": 0, "ser": 0.2},
                {"snr_db": 0},              # metric missing: must not KeyError
                {"ser": 0.9},               # group key missing: must not KeyError
                {"snr_db": 6, "ser": 0.1},
            ],
        )
        means = result.group_mean(by="snr_db", metric="ser")
        assert means == {0: pytest.approx(0.3), 6: pytest.approx(0.1)}

    def test_trials_per_second_counts_executed_not_cache_hits(self):
        from repro.experiments.runner import SweepStats

        # a 100%-cache-hit resume did no work: its rate must be 0, not 1000/s
        resumed = SweepStats(
            num_trials=1000, executed=0, cache_hits=1000, jobs=1, elapsed_s=1.0
        )
        assert resumed.trials_per_second == 0.0
        mixed = SweepStats(
            num_trials=100, executed=40, cache_hits=60, jobs=1, elapsed_s=2.0
        )
        assert mixed.trials_per_second == 20.0
        assert mixed.to_dict()["trials_per_second"] == 20.0
        # zero elapsed serialises as null, not the non-JSON `Infinity` literal
        instant = SweepStats(
            num_trials=1, executed=1, cache_hits=0, jobs=1, elapsed_s=0.0
        )
        assert instant.to_dict()["trials_per_second"] is None

    def test_result_store_write_accepts_a_one_shot_generator(self, tmp_path):
        # a generator is consumed by the JSONL pass; the CSV pass must still
        # see every record (the store materialises exactly once)
        records = (
            {"scenario": "gen", "trial_index": i, "replicate": 0, "seed": i, "m": i * 1.0}
            for i in range(5)
        )
        written = ResultStore(tmp_path).write(records)
        assert len(read_jsonl(written["jsonl"])) == 5
        csv_lines = written["csv"].read_text().splitlines()
        assert len(csv_lines) == 1 + 5  # header + one row per record
        assert csv_lines[0].split(",") == ["scenario", "trial_index", "replicate", "seed", "m"]


class TestResultStore:
    def test_writes_jsonl_csv_and_manifest(self, small_bitwidth_spec, tmp_path):
        result = run_sweep(small_bitwidth_spec)
        written = ResultStore(tmp_path).write(
            result.records, spec=result.spec.to_dict(), stats=result.stats.to_dict()
        )
        assert set(written) == {"jsonl", "csv", "manifest"}
        assert read_jsonl(written["jsonl"]) == result.records
        header = written["csv"].read_text().splitlines()[0].split(",")
        assert header == tidy_headers(result.records)
        assert header[:4] == ["scenario", "trial_index", "replicate", "seed"]
