"""Tests for the scenario registry and the built-in scenarios."""

from __future__ import annotations

import math

import pytest

from repro.experiments import Scenario, get_scenario, list_scenarios, register, run_sweep
from repro.experiments.spec import SeedPolicy, SweepSpec

REQUIRED_SCENARIOS = {
    "modem-ser-vs-snr",
    "fixedpoint-bitwidth",
    "ipcore-parallelism",
    "platform-energy",
    "mp-refinement",
    "network-lifetime",
    "network-contention",
    "network-pdr-vs-density",
}


class TestRegistryCompleteness:
    def test_at_least_five_builtin_scenarios(self):
        assert REQUIRED_SCENARIOS.issubset({s.name for s in list_scenarios()})

    def test_every_layer_is_covered(self):
        layers = {layer for s in list_scenarios() for layer in s.layers}
        assert {"core", "fixedpoint", "modem", "network", "hardware", "channel"} <= layers

    def test_specs_reference_their_scenario_and_expand(self):
        for scenario in list_scenarios():
            assert scenario.spec.scenario == scenario.name
            assert scenario.spec.num_trials > 0

    def test_specs_round_trip_through_json(self):
        for scenario in list_scenarios():
            restored = SweepSpec.from_json(scenario.spec.to_json())
            assert restored == scenario.spec

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="fixedpoint-bitwidth"):
            get_scenario("nope")

    def test_register_and_run_custom_scenario(self):
        scenario = Scenario(
            name="test-affine",
            description="x -> a*x + seed parity",
            layers=("test",),
            version="1",
            run_trial=lambda params, seed: {"y": params["a"] * params["x"] + (seed % 2)},
            default_spec=SweepSpec(
                scenario="test-affine",
                grid={"x": (1, 2, 3)},
                base={"a": 10},
                seed=SeedPolicy(base_seed=0, replicates=1),
            ),
        )
        register(scenario)
        result = run_sweep(scenario.spec)  # serial path: lambda never crosses processes
        assert [r["y"] - r["seed"] % 2 for r in result.records] == [10, 20, 30]


class TestBuiltinTrials:
    """Run one real trial per cheap scenario; heavier ones get a reduced spec."""

    def test_platform_energy_full_default_sweep(self):
        result = run_sweep(get_scenario("platform-energy").spec)
        assert len(result.records) == 5
        by_platform = {r["platform"]: r for r in result.records}
        headline = by_platform["Virtex-4 112FC 8bit"]
        assert headline["energy_uj"] < by_platform["MicroBlaze"]["energy_uj"] / 100
        assert headline["energy_per_packet_uj"] == pytest.approx(
            headline["energy_uj"] * 32
        )

    def test_network_lifetime_ordering(self):
        spec = get_scenario("network-lifetime").spec.with_axis("report_interval_s", (120.0,))
        result = run_sweep(spec)
        lifetime = {r["platform"]: r["lifetime_days"] for r in result.records}
        assert lifetime["Virtex-4 112FC 8bit"] > lifetime["MicroBlaze"]
        assert all(days > 0 and math.isfinite(days) for days in lifetime.values())

    def test_mp_refinement_ls_not_worse_on_residual(self):
        spec = (
            get_scenario("mp-refinement").spec
            .with_axis("num_paths", (6,))
            .with_seed(replicates=3)
        )
        result = run_sweep(spec)
        greedy = result.group_mean(by="estimator", metric="relative_residual")["greedy"]
        refined = result.group_mean(by="estimator", metric="relative_residual")["ls"]
        # LS refinement minimises the residual on the selected support
        assert refined <= greedy + 1e-12

    def test_modem_ser_trial_smoke(self):
        spec = (
            get_scenario("modem-ser-vs-snr").spec
            .with_axis("snr_db", (6.0,))
            .with_axis("scheme", ("DSSS",))
            .with_seed(replicates=1)
            .with_base(num_symbols=12, num_frames=2)
        )
        result = run_sweep(spec)
        (record,) = result.records
        assert 0.0 <= record["symbol_error_rate"] <= 1.0
        assert record["symbols_sent"] > 0

    def test_ipcore_parallelism_accuracy_invariant_cycles_fall(self):
        spec = (
            get_scenario("ipcore-parallelism").spec
            .with_axis("num_fc_blocks", (1, 112))
            .with_axis("word_length", (8,))
            .with_seed(replicates=2)
        )
        result = run_sweep(spec)
        errors = result.group_mean(by="num_fc_blocks", metric="normalized_error")
        cycles = result.group_mean(by="num_fc_blocks", metric="total_cycles")
        # partitioning is a scheduling choice: identical accuracy, Ns/P cycles
        assert errors[1] == errors[112]
        assert cycles[1] == cycles[112] * 112

    def test_network_contention_batch_matches_event_loop_records(self):
        """The scenario's record payloads are engine-independent: batch=true
        and batch=false sweeps differ only in the `batch` param itself (the
        invariant the CI byte-compare smoke pins end to end)."""
        spec = (
            get_scenario("network-contention").spec
            .with_axis("protocol", ("routed",))
            .with_axis("channel_load", (0.3,))
            .with_seed(replicates=1)
            .with_base(num_nodes=9, area_side_m=400.0, max_days=0.2)
        )
        batched = run_sweep(spec.with_base(batch=True))
        reference = run_sweep(spec.with_base(batch=False))

        def strip(records):
            return [
                {k: v for k, v in record.items() if k != "batch"}
                for record in records
            ]

        assert strip(batched.records) == strip(reference.records)
        (record,) = batched.records
        assert record["packets_dropped"] > 0
        assert 0.0 < record["delivery_ratio"] < 1.0

    def test_network_pdr_falls_with_density(self):
        spec = (
            get_scenario("network-pdr-vs-density").spec
            .with_axis("num_nodes", (9, 36))
            .with_seed(replicates=1)
        )
        result = run_sweep(spec)
        ratios = result.group_mean(by="num_nodes", metric="delivery_ratio")
        degrees = result.group_mean(by="num_nodes", metric="mean_degree")
        assert ratios[36] < ratios[9]
        assert degrees[36] > degrees[9]

    def test_fixedpoint_bitwidth_wider_is_closer_to_float(self):
        spec = (
            get_scenario("fixedpoint-bitwidth").spec
            .with_axis("word_length", (4, 12))
            .with_seed(replicates=3)
        )
        result = run_sweep(spec)
        vs_float = result.group_mean(by="word_length", metric="error_vs_float")
        assert vs_float[12] <= vs_float[4]
