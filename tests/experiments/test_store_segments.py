"""Segmented result store: append-only segments, streaming merge, dedup."""

from __future__ import annotations

import json

import pytest

from repro.experiments.segments import (
    SegmentedResultStore,
    iter_merged_records,
    run_fingerprint,
    segment_files,
)
from repro.experiments.store import ResultStore, read_jsonl


def _record(index: int, **extra):
    record = {
        "scenario": "seg-test",
        "trial_index": index,
        "replicate": index % 4,
        "seed": 1000 + index,
        "snr_db": float(index // 4),
        "symbol_error_rate": 0.01 * index,
    }
    record.update(extra)
    return record


class TestAppend:
    def test_first_segment_gets_sequence_zero(self, tmp_path):
        store = SegmentedResultStore(tmp_path)
        path = store.append([_record(0), _record(1)])
        assert path is not None
        assert path.name == "segment-000000.jsonl"
        assert path.parent == tmp_path / "segments"

    def test_label_lands_in_the_file_name(self, tmp_path):
        store = SegmentedResultStore(tmp_path)
        store.append([_record(0)])
        path = store.append([_record(1)], label="wave-000")
        assert path.name == "segment-000001-wave-000.jsonl"

    def test_records_are_sorted_by_trial_index(self, tmp_path):
        store = SegmentedResultStore(tmp_path)
        path = store.append([_record(5), _record(2), _record(9)])
        indexes = [record["trial_index"] for record in read_jsonl(path)]
        assert indexes == [2, 5, 9]

    def test_empty_batch_writes_nothing(self, tmp_path):
        store = SegmentedResultStore(tmp_path)
        assert store.append([]) is None
        assert store.segments() == []

    def test_flush_trials_validated(self, tmp_path):
        with pytest.raises(ValueError, match="flush_trials"):
            SegmentedResultStore(tmp_path, flush_trials=0)

    def test_resume_continues_the_sequence(self, tmp_path):
        first = SegmentedResultStore(tmp_path)
        first.append([_record(0)])
        first.append([_record(1)], label="final")
        # a new store over the same directory (a resumed sweep) must never
        # overwrite the segments the killed run left behind
        resumed = SegmentedResultStore(tmp_path)
        path = resumed.append([_record(2)])
        assert path.name == "segment-000002.jsonl"
        assert len(resumed.segments()) == 3


class TestFingerprint:
    """Reusing an output directory across *different* runs must fail fast."""

    def test_same_fingerprint_resumes(self, tmp_path):
        fp = run_fingerprint(spec={"scenario": "a"}, adaptive={"ci_width": 0.05})
        SegmentedResultStore(tmp_path, fingerprint=fp).append([_record(0)])
        resumed = SegmentedResultStore(tmp_path, fingerprint=fp)
        assert resumed.append([_record(1)]).name == "segment-000001.jsonl"

    def test_different_fingerprint_with_segments_raises(self, tmp_path):
        SegmentedResultStore(
            tmp_path, fingerprint=run_fingerprint(spec={"scenario": "a"})
        ).append([_record(0)])
        with pytest.raises(ValueError, match="different sweep"):
            SegmentedResultStore(
                tmp_path, fingerprint=run_fingerprint(spec={"scenario": "b"})
            )

    def test_unidentified_segments_raise(self, tmp_path):
        # segments written without a fingerprint are another run's data too
        SegmentedResultStore(tmp_path).append([_record(0)])
        with pytest.raises(ValueError, match="different sweep"):
            SegmentedResultStore(tmp_path, fingerprint=run_fingerprint(spec={}))

    def test_stale_sidecar_without_segments_is_reclaimed(self, tmp_path):
        # a run killed before its first flush leaves run.json but no data:
        # a different run may take the directory over
        SegmentedResultStore(tmp_path, fingerprint=run_fingerprint(spec={"n": 1}))
        store = SegmentedResultStore(
            tmp_path, fingerprint=run_fingerprint(spec={"n": 2})
        )
        assert store.append([_record(0)]).name == "segment-000000.jsonl"

    def test_sidecar_is_not_listed_as_a_segment(self, tmp_path):
        store = SegmentedResultStore(tmp_path, fingerprint=run_fingerprint(spec={}))
        store.append([_record(0)])
        assert [path.name for path in segment_files(tmp_path)] == [
            "segment-000000.jsonl"
        ]

    def test_fingerprint_is_stable_and_order_insensitive(self):
        assert run_fingerprint(spec={"a": 1}, adaptive={"b": 2}) == run_fingerprint(
            adaptive={"b": 2}, spec={"a": 1}
        )
        assert run_fingerprint(spec={"a": 1}) != run_fingerprint(spec={"a": 2})


class TestSegmentFiles:
    def test_empty_without_segments_dir(self, tmp_path):
        assert segment_files(tmp_path) == []

    def test_ignores_foreign_files(self, tmp_path):
        store = SegmentedResultStore(tmp_path)
        store.append([_record(0)])
        (tmp_path / "segments" / "notes.txt").write_text("not a segment\n")
        (tmp_path / "segments" / "segment-xyz.jsonl").write_text("{}\n")
        assert [path.name for path in segment_files(tmp_path)] == [
            "segment-000000.jsonl"
        ]


class TestMergeStreaming:
    def test_k_way_merge_restores_canonical_order(self, tmp_path):
        store = SegmentedResultStore(tmp_path)
        store.append([_record(i) for i in (0, 3, 6)])
        store.append([_record(i) for i in (1, 4, 7)])
        store.append([_record(i) for i in (2, 5)])
        merged = list(iter_merged_records(tmp_path))
        assert [record["trial_index"] for record in merged] == list(range(8))
        assert store.record_count() == 8

    def test_identical_duplicates_collapse(self, tmp_path):
        # a resumed sweep re-flushes its interrupted wave: same trials,
        # byte-identical records
        store = SegmentedResultStore(tmp_path)
        store.append([_record(0), _record(1)])
        store.append([_record(1), _record(2)])
        merged = list(store.iter_records())
        assert [record["trial_index"] for record in merged] == [0, 1, 2]

    def test_conflicting_duplicates_raise(self, tmp_path):
        store = SegmentedResultStore(tmp_path)
        store.append([_record(1)])
        store.append([_record(1, symbol_error_rate=0.999)])
        with pytest.raises(ValueError, match="segments disagree"):
            list(store.iter_records())


class TestMergeArtefacts:
    def test_merge_is_byte_identical_to_result_store_write(self, tmp_path):
        records = [_record(i) for i in range(10)]
        spec = {"scenario": "seg-test"}
        stats = {"num_trials": 10}

        segmented_dir = tmp_path / "segmented"
        store = SegmentedResultStore(segmented_dir)
        store.append(records[:4], label="wave-000")
        store.append(records[4:9], label="wave-001")
        store.append(records[9:], label="final")
        merged = store.merge(spec=spec, stats=stats)

        fixed_dir = tmp_path / "fixed"
        fixed = ResultStore(fixed_dir).write(records, spec=spec, stats=stats)

        for artefact in ("jsonl", "csv", "manifest"):
            assert merged[artefact].read_bytes() == fixed[artefact].read_bytes(), (
                f"{artefact} differs between segmented merge and ResultStore.write"
            )

    def test_merge_without_spec_or_stats_skips_the_manifest(self, tmp_path):
        store = SegmentedResultStore(tmp_path)
        store.append([_record(0)])
        written = store.merge()
        assert set(written) == {"jsonl", "csv"}
        assert not (tmp_path / "manifest.json").exists()

    def test_merged_jsonl_is_valid_and_deduplicated(self, tmp_path):
        store = SegmentedResultStore(tmp_path)
        store.append([_record(0), _record(1)])
        store.append([_record(1), _record(2)])  # resumed-wave duplicate
        written = store.merge()
        lines = written["jsonl"].read_text().splitlines()
        assert len(lines) == 3
        assert [json.loads(line)["trial_index"] for line in lines] == [0, 1, 2]
