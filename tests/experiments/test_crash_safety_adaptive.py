"""``kill -9`` crash safety for adaptive sweeps and their segmented store.

Extends the fixed-count crash contract (``test_crash_safety.py``) to the
sequential-stopping path: SIGKILL an adaptive sweep mid-wave, and

* every segment file on disk is complete, valid JSONL sorted by
  ``trial_index`` (atomic segment writes mean the kill can only lose the
  in-flight temp file, never leave a torn segment);
* a resumed adaptive run over the same output directory and cache completes,
  re-using the killed run's cached trials and *appending* new segments (the
  sequence numbering continues — nothing is overwritten);
* the merged results are byte-identical to an uninterrupted adaptive run of
  the same spec and stopping rule.

SIGKILL runs no ``finally`` blocks — the final-flush path in
``run_adaptive_sweep`` never executes, so everything the test finds on disk
was placed there by the per-wave atomic flushes alone.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import (
    ResultCache,
    Scenario,
    SegmentedResultStore,
    register,
    run_adaptive_sweep,
)
from repro.experiments.adaptive import AdaptiveConfig
from repro.experiments.segments import segment_files
from repro.experiments.spec import SweepSpec

SRC = str(Path(__file__).resolve().parents[2] / "src")

SCENARIO = "adaptive-crash-test"
NUM_POINTS = 4
#: A rule no point can satisfy before the ceiling, so the child keeps
#: sampling waves until killed: ~0.01 half-width needs far more than 24
#: trials of evidence.
CONFIG = AdaptiveConfig(
    metric="success", ci_width=0.01, max_trials=24, min_trials=4, wave_trials=4
)

CHILD_SCRIPT = f"""
import sys, time
sys.path.insert(0, {SRC!r})
from repro.experiments import (
    Scenario, register, ResultCache, SegmentedResultStore, run_adaptive_sweep,
)
from repro.experiments.adaptive import AdaptiveConfig
from repro.experiments.spec import SweepSpec

def run_trial(params, seed):
    time.sleep(0.03)
    return {{"success": float(seed % 2)}}

register(Scenario(
    name={SCENARIO!r}, description="adaptive crash-safety probe",
    layers=("test",), version="1", run_trial=run_trial,
    default_spec=SweepSpec(scenario={SCENARIO!r},
                           grid={{"x": tuple(range({NUM_POINTS}))}}),
))
from repro.experiments import get_scenario
config = AdaptiveConfig(**{CONFIG.to_dict()!r})
run_adaptive_sweep(
    get_scenario({SCENARIO!r}).spec, config,
    cache=ResultCache(sys.argv[1]),
    store=SegmentedResultStore(sys.argv[2], flush_trials=4),
)
"""


def _register_parent_side() -> SweepSpec:
    """The same scenario (same name/version) in this process, for the resume."""

    def run_trial(params, seed):
        return {"success": float(seed % 2)}

    scenario = register(Scenario(
        name=SCENARIO, description="adaptive crash-safety probe",
        layers=("test",), version="1", run_trial=run_trial,
        default_spec=SweepSpec(scenario=SCENARIO,
                               grid={"x": tuple(range(NUM_POINTS))}),
    ))
    return scenario.spec


def _run_child_until_killed(cache_dir: Path, store_dir: Path) -> None:
    """Start the child sweep, SIGKILL it once >= 2 segments hit disk."""
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(cache_dir), str(store_dir)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if len(segment_files(store_dir)) >= 2:
                break
            if child.poll() is not None:
                pytest.fail("child sweep finished before it could be killed")
            time.sleep(0.02)
        else:
            pytest.fail("child sweep never flushed a segment")
        os.kill(child.pid, signal.SIGKILL)
    finally:
        child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL


class TestKillDashNineAdaptive:
    def test_segments_survive_and_resume_merges_byte_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        store_dir = tmp_path / "results"
        _run_child_until_killed(cache_dir, store_dir)

        # 1) nothing torn: every surviving segment is complete, valid JSONL,
        #    internally sorted by trial_index
        survivors = segment_files(store_dir)
        assert len(survivors) >= 2
        for path in survivors:
            indexes = []
            for line in path.read_text().splitlines():
                record = json.loads(line)  # a torn line would raise here
                assert record["scenario"] == SCENARIO
                indexes.append(record["trial_index"])
            assert indexes == sorted(indexes)

        # 2) the resumed run appends — segment numbering continues past the
        #    killed run's files, and every pre-kill segment is left untouched
        before = {path.name: path.read_bytes() for path in survivors}
        spec = _register_parent_side()
        resumed = run_adaptive_sweep(
            spec, CONFIG,
            cache=ResultCache(cache_dir),
            store=SegmentedResultStore(store_dir, flush_trials=4),
        )
        assert resumed.stats.cache_hits > 0  # it really resumed from the kill
        after = segment_files(store_dir)
        assert len(after) > len(survivors)
        for path in after[: len(survivors)]:
            assert path.read_bytes() == before[path.name]

        # 3) the merged artefacts byte-match an uninterrupted adaptive run
        #    (duplicate trials from the re-executed wave dedupe in the merge)
        merged = SegmentedResultStore(store_dir).merge()
        clean_dir = tmp_path / "clean"
        clean = run_adaptive_sweep(
            spec, CONFIG, store=SegmentedResultStore(clean_dir, flush_trials=4)
        )
        clean_merged = SegmentedResultStore(clean_dir).merge()
        assert merged["jsonl"].read_bytes() == clean_merged["jsonl"].read_bytes()
        assert merged["csv"].read_bytes() == clean_merged["csv"].read_bytes()
        assert resumed.records == clean.records
        assert resumed.stats.num_trials == clean.stats.num_trials
