"""Benchmark — batched contention engine vs the per-packet event loop.

Runs the contention-realistic network stack (per-packet CSMA collision
draws with bounded retries, plus a TTL-flooding variant) through both the
event loop and the batched general path at equal trial counts and records
the speed-up.  Both engines evaluate the same counter-based uniforms and the
same closed-form accounting, so besides being faster the batched engine
returns *identical* results — packet drops included — which this benchmark
asserts, making it an end-to-end equivalence check at benchmark scale.

The hard gate is >= 5x (the same bar as the legacy network benchmark); on
this workload the batched general path typically measures ~10-16x even on a
loaded single-core runner, since the event loop draws and prices every
attempt of every hop in Python while the batch engine vectorises whole event
segments between deaths.  The measured ratio is stored in ``extra_info``
(and the benchmark JSON artifact in CI, where ``benchmarks/compare.py``
tracks regressions against the previous run).
"""

from __future__ import annotations

import time

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.batch import simulate_network_trials
from repro.network.mac import CsmaMac
from repro.network.routing import TtlFlooding
from repro.network.topology import grid_deployment
from repro.network.traffic import PeriodicTraffic
from repro.utils.tables import format_table

PROTOCOLS = {"routed": None, "flooding": TtlFlooding(ttl=4)}
SEEDS = [0, 1, 2]
ROUNDS = 2
MIN_SPEEDUP = 5.0


def _sweep(batch: bool, protocol):
    budget = ModemEnergyBudget(
        transmit_power_w=2.0,
        receive_frontend_power_w=0.05,
        processing_energy_per_estimation_j=500.76e-6,
        processing_idle_power_w=0.01,
    )
    return simulate_network_trials(
        grid_deployment(5, 5, spacing_m=200.0),
        budget,
        traffic=PeriodicTraffic(report_interval_s=60.0, packet_symbols=32,
                                jitter_fraction=0.1),
        communication_range_m=300.0,
        battery_capacity_j=8_000.0,
        seeds=SEEDS,
        max_time_s=30.0 * 86_400.0,
        batch=batch,
        mac=CsmaMac(channel_load=0.2, max_attempts=5),
        protocol=protocol,
    )


def _signature(results):
    return [
        (r.first_death_time_s, r.packets_generated, r.packets_delivered,
         r.packets_dropped, tuple(sorted(r.node_alive.items())))
        for r in results
    ]


def test_bench_network_contention(benchmark):
    # Interleave every (protocol, engine) measurement round by round so
    # machine-load drift hits all of them equally — the asserted gate uses
    # these interleaved timings.
    keys = [(name, batch) for name in PROTOCOLS for batch in (False, True)]
    times = {key: float("inf") for key in keys}
    results = {}
    for _ in range(ROUNDS):
        for name, batch in keys:
            start = time.perf_counter()
            outcome = _sweep(batch, PROTOCOLS[name])
            times[(name, batch)] = min(times[(name, batch)], time.perf_counter() - start)
            results[(name, batch)] = outcome

    # seed-locked equivalence at benchmark scale: identical trial outcomes,
    # contention drops included
    for name in PROTOCOLS:
        assert _signature(results[(name, True)]) == _signature(results[(name, False)]), (
            f"{name} results diverged from the event loop"
        )
        assert all(r.first_death_time_s is not None for r in results[(name, True)])
    # the routed CSMA workload must actually drop packets to contention
    assert all(r.packets_dropped > 0 for r in results[("routed", True)])

    # the recorded pytest-benchmark timing is the batched engine's full sweep
    benchmark.pedantic(
        lambda: [_sweep(True, protocol) for protocol in PROTOCOLS.values()],
        iterations=1,
        rounds=1,
    )

    event_total = sum(times[(name, False)] for name in PROTOCOLS)
    batch_total = sum(times[(name, True)] for name in PROTOCOLS)
    speedup = event_total / batch_total
    benchmark.extra_info["trials_per_protocol"] = len(SEEDS)
    benchmark.extra_info["protocols"] = len(PROTOCOLS)
    benchmark.extra_info["event_loop_s"] = round(event_total, 4)
    benchmark.extra_info["batch_s"] = round(batch_total, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print()
    print(
        format_table(
            ["Protocol", "Event loop (s)", "Batched (s)", "Speed-up"],
            [
                (
                    name,
                    round(times[(name, False)], 3),
                    round(times[(name, True)], 3),
                    f"{times[(name, False)] / times[(name, True)]:.1f}x",
                )
                for name in PROTOCOLS
            ]
            + [("contention sweep (total)", round(event_total, 3), round(batch_total, 3),
                f"{speedup:.1f}x")],
            title=(
                f"Contention sweep — batched general path vs event loop "
                f"(25 nodes, CSMA, {len(SEEDS)} jittered trials x {len(PROTOCOLS)} protocols)"
            ),
        )
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched contention sweep only {speedup:.2f}x faster (gate: {MIN_SPEEDUP}x)"
    )
