"""Experiment E3 — regenerate Table 2 (area / timing / throughput DSE).

Checks against the paper: every published area figure is reproduced exactly,
every published timing figure within 0.5 %, the 112-block Spartan-3 design is
infeasible (DSP48 limit), and the qualitative orderings hold (Virtex-4 faster,
timing scales with 112/P, everything within the 22.4 ms deadline).
"""

from __future__ import annotations

import pytest

from repro.analysis.table2 import render_table2, reproduce_table2


def test_bench_table2_area_timing(benchmark):
    rows = benchmark(reproduce_table2)
    print()
    print(render_table2(rows))

    published = [r for r in rows if r.paper_slices is not None and r.feasible]
    assert len(published) == 15
    for row in published:
        assert row.slices == row.paper_slices, f"area mismatch at {row}"
        assert row.time_error < 0.005, f"timing off by {row.time_error:.2%} at {row}"

    infeasible = [r for r in rows if not r.feasible]
    assert {(r.device_family, r.num_fc_blocks) for r in infeasible} == {("Spartan-3", 112)}

    # shape: the Virtex-4 is faster than the Spartan-3 at every comparable point
    for bits in (8, 12, 16):
        for blocks in (1, 14):
            v4 = next(r for r in rows if r.device_family == "Virtex-4"
                      and r.word_length == bits and r.num_fc_blocks == blocks)
            s3 = next(r for r in rows if r.device_family == "Spartan-3"
                      and r.word_length == bits and r.num_fc_blocks == blocks)
            assert v4.time_us < s3.time_us

    # shape: timing scales as 112 / P and every point meets the 22.4 ms deadline
    for bits in (8, 12, 16):
        v4 = {r.num_fc_blocks: r.time_us for r in rows
              if r.device_family == "Virtex-4" and r.word_length == bits}
        assert v4[1] / v4[112] == pytest.approx(112.0, rel=1e-6)
        assert v4[1] / v4[14] == pytest.approx(14.0, rel=1e-6)
    assert all(r.time_us < 22.4e3 for r in rows if r.feasible)
