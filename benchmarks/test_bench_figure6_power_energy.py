"""Experiment E4 — regenerate Figure 6 (power and energy of the DSE).

Checks against the paper: the four published power/energy anchor points are
reproduced within 4 %, and the figure's qualitative shape holds — power rises
with parallelism and bit width, energy falls with parallelism, the Virtex-4
draws more than the Spartan-3, and the serial designs sit just above the
quiescent floor (0.723 W / 0.335 W).
"""

from __future__ import annotations

import pytest

from repro.analysis.figure6 import render_figure6, reproduce_figure6


def test_bench_figure6_power_energy(benchmark):
    points = benchmark(reproduce_figure6)
    print()
    print(render_figure6(points))

    anchored = [p for p in points if p.paper_power_w is not None]
    assert len(anchored) == 4
    for p in anchored:
        assert p.power_w == pytest.approx(p.paper_power_w, rel=0.04)
        assert p.energy_uj == pytest.approx(p.paper_energy_uj, rel=0.04)

    for family in ("Virtex-4", "Spartan-3"):
        for bits in (8, 12, 16):
            series = {p.num_fc_blocks: p for p in points
                      if p.device_family == family and p.word_length == bits and p.feasible}
            levels = sorted(series)
            powers = [series[lvl].power_w for lvl in levels]
            energies = [series[lvl].energy_uj for lvl in levels]
            assert powers == sorted(powers), "power must rise with parallelism"
            assert energies == sorted(energies, reverse=True), "energy must fall with parallelism"

    # power also rises with bit width at fixed parallelism
    for family in ("Virtex-4", "Spartan-3"):
        for blocks in (1, 14):
            series = [p.power_w for p in sorted(
                (p for p in points if p.device_family == family and p.num_fc_blocks == blocks),
                key=lambda p: p.word_length)]
            assert series == sorted(series)

    # Virtex-4 always draws more power than the Spartan-3 at comparable points
    for bits in (8, 12, 16):
        for blocks in (1, 14):
            v4 = next(p for p in points if p.device_family == "Virtex-4"
                      and p.word_length == bits and p.num_fc_blocks == blocks)
            s3 = next(p for p in points if p.device_family == "Spartan-3"
                      and p.word_length == bits and p.num_fc_blocks == blocks)
            assert v4.power_w > s3.power_w

    # serial designs sit near the quiescent floor
    for p in points:
        if p.num_fc_blocks == 1:
            assert p.power_w - p.quiescent_power_w < 0.05
