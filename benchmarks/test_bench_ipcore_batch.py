"""Benchmark — batched IP-core engine vs the scalar FC-block walk.

Runs a stack of Monte-Carlo channel estimations through the scalar
:class:`~repro.core.ipcore.simulator.IPCoreSimulator` (one Python walk over
the FC blocks per trial — the executable specification) and through
:class:`~repro.core.ipcore.batch.BatchIPCoreEngine` (the same blocks driven
once over registers with a leading trial axis) at equal trial counts, and
records the speed-up.  The engine's datapath is pinned bit-identical on raw
integer codes, so besides being faster it returns *identical* results —
which this benchmark also asserts trial by trial with ``==`` at benchmark
scale, making it an end-to-end conformance check.

The hard gate is >= 5x (the ISSUE 5 acceptance threshold); at the paper's
14-block design the scalar walk pays ~100 small NumPy calls per estimation
while the engine amortises them over the whole stack, so a CI-class
single-core container typically measures 15-40x.  The measured ratio is
stored in ``extra_info`` (and the benchmark JSON artifact in CI, where
``benchmarks/compare.py`` tracks regressions against the previous run).
"""

from __future__ import annotations

import time

import numpy as np

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.ipcore import BatchIPCoreEngine, IPCoreConfig
from repro.utils.tables import format_table

NUM_FC_BLOCKS = 14
WORD_LENGTH = 12
TRIALS = 96
ROUNDS = 3
MIN_SPEEDUP = 5.0


def _problem_stack(matrices) -> np.ndarray:
    rows = []
    for seed in range(TRIALS):
        channel = random_sparse_channel(
            num_paths=4, max_delay=100, rng=seed, min_separation=4
        )
        rows.append(add_noise_for_snr(
            matrices.synthesize(channel.coefficient_vector(matrices.num_delays)),
            22.0, rng=seed + 1_000,
        ))
    return np.stack(rows)


def test_bench_ipcore_batch(benchmark, aquamodem_matrices):
    engine = BatchIPCoreEngine(
        aquamodem_matrices,
        IPCoreConfig(num_fc_blocks=NUM_FC_BLOCKS, word_length=WORD_LENGTH, num_paths=6),
    )
    received = _problem_stack(aquamodem_matrices)

    # Interleave the engine and scalar measurements round by round so
    # machine-load drift hits both equally; the gate uses the interleaved
    # minima.  Both paths share one simulator instance (same quantised
    # matrices, same control unit), so the comparison is pure datapath.
    times = {True: float("inf"), False: float("inf")}
    results = {}
    for _ in range(ROUNDS):
        for batch in (False, True):
            start = time.perf_counter()
            if batch:
                outcome = engine.estimate_batch(received)
                results[batch] = [outcome.result[t] for t in range(TRIALS)]
            else:
                runs = [engine.core.estimate(row) for row in received]
                results[batch] = [run.result for run in runs]
            times[batch] = min(times[batch], time.perf_counter() - start)

    # result identity at benchmark scale: raw integer codes, trial by trial
    assert results[True] == results[False], "batched IP core diverged from the scalar walk"

    # the recorded pytest-benchmark timing is the batched engine's full stack
    benchmark.pedantic(lambda: engine.estimate_batch(received), iterations=1, rounds=1)

    speedup = times[False] / times[True]
    benchmark.extra_info["num_fc_blocks"] = NUM_FC_BLOCKS
    benchmark.extra_info["word_length"] = WORD_LENGTH
    benchmark.extra_info["trials"] = TRIALS
    benchmark.extra_info["scalar_walk_s"] = round(times[False], 4)
    benchmark.extra_info["batch_s"] = round(times[True], 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print()
    print(
        format_table(
            ["Path", "Time (s)", "Speed-up"],
            [
                ("scalar FC-block walk (reference)", round(times[False], 3), "1.0x"),
                ("batched engine", round(times[True], 3), f"{speedup:.1f}x"),
            ],
            title=(
                f"IP core — batched engine vs scalar walk "
                f"(P={NUM_FC_BLOCKS}, w={WORD_LENGTH}, {TRIALS} trials)"
            ),
        )
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched IP-core engine only {speedup:.2f}x faster (gate: {MIN_SPEEDUP}x)"
    )
