"""Experiment E6 (ablation) — channel-estimation accuracy vs datapath bit width.

Section IV.C, citing Meng et al. [21], claims 8-10 bits with optimal
dynamic-range scaling are sufficient for accurate channel estimation.  The
ablation sweeps the word length of the fixed-point MP datapath and measures
estimation error against the true channel and against the floating-point
reference.
"""

from __future__ import annotations

from repro.analysis.ablations import bitwidth_accuracy_ablation
from repro.utils.tables import format_table

WORD_LENGTHS = (4, 6, 8, 10, 12, 16)


def test_bench_ablation_bitwidth(benchmark):
    results = benchmark.pedantic(
        bitwidth_accuracy_ablation,
        kwargs=dict(word_lengths=WORD_LENGTHS, num_trials=12, snr_db=25.0, rng=0),
        iterations=1,
        rounds=1,
    )
    print()
    print(
        format_table(
            ["Word length", "error vs true channel", "support recovery", "error vs float MP"],
            [
                (r.word_length, r.mean_normalized_error, r.mean_support_recovery, r.mean_error_vs_float)
                for r in results
            ],
            title="E6 — fixed-point MP accuracy vs word length",
        )
    )
    by_bits = {r.word_length: r for r in results}

    # the paper's claim: 8 bits are already accurate ...
    assert by_bits[8].mean_support_recovery > 0.9
    assert by_bits[8].mean_error_vs_float < 0.25
    assert by_bits[8].mean_normalized_error < 0.2
    # ... 10+ bits do not change the story ...
    assert abs(by_bits[10].mean_normalized_error - by_bits[8].mean_normalized_error) < 0.1
    assert by_bits[16].mean_error_vs_float < 0.1
    # ... while very low precision clearly degrades estimation
    assert by_bits[4].mean_normalized_error > 1.5 * by_bits[8].mean_normalized_error
