"""Sweep-engine throughput baseline: trials/sec, serial vs worker pool.

Two measurements establish the engine's perf envelope:

* **dispatch overhead** — a sweep over the analytic ``platform-energy``
  scenario, whose trials are microseconds of work, so the measured
  trials/sec is essentially the engine's own bookkeeping cost;
* **parallel speedup** — a compute-bound ``modem-ser-vs-snr`` sweep (the
  heaviest built-in trials: full transmit/channel/receive chains) run
  serially and on a 4-worker pool over identical trials, printing the
  speedup and asserting the two runs produce identical records (the
  engine's core determinism guarantee under load).

The speedup number is hardware-dependent (a single-core container can at
best reach parity); the records-equality assertion is not.
"""

from __future__ import annotations

import os
import time

from repro.experiments import get_scenario, run_sweep
from repro.utils.tables import format_table

JOBS = min(4, os.cpu_count() or 1) if (os.cpu_count() or 1) > 1 else 2


def _link_spec():
    return (
        get_scenario("modem-ser-vs-snr").spec
        .with_base(num_symbols=96, num_frames=4)
        .with_seed(replicates=4)
    )


def test_bench_sweep_dispatch_overhead(benchmark):
    spec = get_scenario("platform-energy").spec
    result = benchmark(lambda: run_sweep(spec, jobs=1))
    assert result.stats.num_trials == 5
    print()
    print(f"engine dispatch: {result.stats.trials_per_second:,.0f} trials/s "
          f"on trivial (analytic) trials")


def test_bench_sweep_serial_vs_parallel(benchmark):
    spec = _link_spec()

    started = time.perf_counter()
    serial = run_sweep(spec, jobs=1)
    serial_s = time.perf_counter() - started

    parallel = benchmark.pedantic(
        lambda: run_sweep(spec, jobs=JOBS), iterations=1, rounds=3
    )
    parallel_s = parallel.stats.elapsed_s

    print()
    print(
        format_table(
            ["Mode", "Trials", "Elapsed (s)", "Trials/s"],
            [
                ("serial", serial.stats.num_trials, serial_s,
                 serial.stats.num_trials / serial_s),
                (f"--jobs {JOBS}", parallel.stats.num_trials, parallel_s,
                 parallel.stats.num_trials / parallel_s),
            ],
            title=f"Sweep engine throughput (speedup {serial_s / parallel_s:.2f}x)",
        )
    )

    # identical records regardless of execution mode — the engine's core guarantee
    assert parallel.records == serial.records
    assert parallel.stats.jobs == JOBS
