"""Experiment E1 — regenerate Table 1 (AquaModem design parameters).

Every derived waveform parameter must match the paper exactly; the benchmark
times the (cheap) derivation plus validation as a smoke-level baseline for the
harness.
"""

from __future__ import annotations

from repro.analysis.table1 import render_table1, reproduce_table1


def test_bench_table1_parameters(benchmark):
    rows = benchmark(reproduce_table1)
    print()
    print(render_table1(rows))
    assert len(rows) == 9
    assert all(row.matches for row in rows), "Table 1 must be reproduced exactly"
