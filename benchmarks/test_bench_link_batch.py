"""Benchmark — batched link engine vs the per-frame Monte-Carlo loop (E7).

Runs the full E7 workload (a 5-point SER-vs-SNR curve) through both the
legacy per-frame loop and the batched engine at equal trial counts and
records the speed-up.  The batched engine draws an identical RNG stream, so
besides being faster it returns the *same counts* — which this benchmark
also asserts, making it an end-to-end equivalence check at benchmark scale.

The hard gate is a conservative >= 2x so the suite stays robust on loaded
single-core CI runners; on this workload the batched engine measures around
2.5-3x on a contended single core and benefits further from draw/compute
pipeline overlap (`BatchLinkEngine.run_curve`) on multi-core hosts.  The
exact measured ratio is stored in ``extra_info`` (and the benchmark JSON
artifact in CI) so regressions are visible even above the gate.
"""

from __future__ import annotations

import time

from repro.modem.link import LinkSimulator
from repro.utils.tables import format_table

SNR_POINTS_DB = [-9.0, -6.0, -3.0, 0.0, 3.0]
NUM_SYMBOLS = 960
NUM_FRAMES = 16
ROUNDS = 3
MIN_SPEEDUP = 2.0


def _curve(batch: bool, scheme: str):
    simulator = LinkSimulator(rng=0, batch=batch)
    return simulator.run_curve(scheme, SNR_POINTS_DB, NUM_SYMBOLS, NUM_FRAMES)


def _best_time(fn, rounds: int = ROUNDS) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_link_batch(benchmark):
    # Interleave every (chain, engine) measurement round by round so
    # machine-load drift hits all of them equally — the asserted gate uses
    # these interleaved timings.
    keys = [
        ("DSSS", False), ("DSSS", True), ("FSK", False), ("FSK", True),
    ]
    times = {key: float("inf") for key in keys}
    results = {}
    for _ in range(ROUNDS):
        for scheme, batch in keys:
            elapsed, curve = _best_time(
                lambda scheme=scheme, batch=batch: _curve(batch, scheme), rounds=1
            )
            times[(scheme, batch)] = min(times[(scheme, batch)], elapsed)
            results[(scheme, batch)] = curve

    # seed-locked equivalence at benchmark scale: identical counts
    for scheme in ("DSSS", "FSK"):
        reference = [(r.symbols_sent, r.symbol_errors) for r in results[(scheme, False)]]
        batched = [(r.symbols_sent, r.symbol_errors) for r in results[(scheme, True)]]
        assert batched == reference, f"{scheme} counts diverged from the per-frame path"

    # the recorded pytest-benchmark timing is the batched engine's
    benchmark.pedantic(
        lambda: {scheme: _curve(True, scheme) for scheme in ("DSSS", "FSK")},
        iterations=1,
        rounds=1,
    )

    dsss_ref, dsss_batch = times[("DSSS", False)], times[("DSSS", True)]
    fsk_ref, fsk_batch = times[("FSK", False)], times[("FSK", True)]
    perframe_total = dsss_ref + fsk_ref
    batch_total = dsss_batch + fsk_batch
    speedup = perframe_total / batch_total
    benchmark.extra_info["num_symbols"] = NUM_SYMBOLS
    benchmark.extra_info["num_frames"] = NUM_FRAMES
    benchmark.extra_info["snr_points"] = len(SNR_POINTS_DB)
    benchmark.extra_info["perframe_s"] = round(perframe_total, 4)
    benchmark.extra_info["batch_s"] = round(batch_total, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["dsss_speedup"] = round(dsss_ref / dsss_batch, 2)
    benchmark.extra_info["fsk_speedup"] = round(fsk_ref / fsk_batch, 2)

    print()
    print(
        format_table(
            ["Chain", "Per-frame (s)", "Batched (s)", "Speed-up"],
            [
                ("DSSS (MP + RAKE)", round(dsss_ref, 3), round(dsss_batch, 3),
                 f"{dsss_ref / dsss_batch:.2f}x"),
                ("FSK", round(fsk_ref, 3), round(fsk_batch, 3),
                 f"{fsk_ref / fsk_batch:.2f}x"),
                ("E7 curve (both)", round(perframe_total, 3), round(batch_total, 3),
                 f"{speedup:.2f}x"),
            ],
            title=(
                f"E7 link simulation — batched engine vs per-frame loop "
                f"({NUM_SYMBOLS} symbols x {len(SNR_POINTS_DB)} SNR points, "
                f"{NUM_FRAMES} frames)"
            ),
        )
    )

    # hard regression gate: the DSSS chain (the E7 hot path) must stay
    # comfortably faster than the per-frame loop
    assert dsss_ref / dsss_batch >= MIN_SPEEDUP, (
        f"batched DSSS chain only {dsss_ref / dsss_batch:.2f}x faster "
        f"(gate: {MIN_SPEEDUP}x)"
    )
