"""Experiment E13 (extension) — least-squares refinement of the MP estimate.

The paper's algorithm descends from the MP/GSIC estimator of Kim & Iltis;
adding a final joint least-squares solve on the selected support is the
natural software-side improvement (cheap on a DSP, a small extra block on the
FPGA).  The benchmark measures the accuracy gain and the runtime cost of the
refined estimator relative to plain greedy MP.
"""

from __future__ import annotations

import numpy as np

from repro.channel.multipath import random_sparse_channel
from repro.channel.simulator import add_noise_for_snr
from repro.core.matching_pursuit import matching_pursuit
from repro.core.metrics import normalized_channel_error
from repro.core.refinement import matching_pursuit_ls
from repro.utils.tables import format_table


def _accuracy_comparison(matrices, num_trials: int = 20, snr_db: float = 15.0):
    greedy_errors = []
    refined_errors = []
    for seed in range(num_trials):
        channel = random_sparse_channel(num_paths=4, max_delay=100, rng=seed, min_separation=3)
        truth = channel.coefficient_vector(112)
        received = add_noise_for_snr(matrices.synthesize(truth), snr_db, rng=1000 + seed)
        greedy = matching_pursuit(received, matrices, num_paths=6)
        refined = matching_pursuit_ls(received, matrices, num_paths=6)
        greedy_errors.append(normalized_channel_error(truth, greedy.coefficients))
        refined_errors.append(normalized_channel_error(truth, refined.coefficients))
    return float(np.mean(greedy_errors)), float(np.mean(refined_errors))


def test_bench_mp_ls_accuracy(benchmark, aquamodem_matrices):
    greedy_error, refined_error = benchmark.pedantic(
        _accuracy_comparison, args=(aquamodem_matrices,), iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["Estimator", "Mean normalised channel error (15 dB, 4 paths)"],
            [("Greedy MP (paper)", round(greedy_error, 4)),
             ("MP + LS refinement", round(refined_error, 4))],
            title="E13 — accuracy of greedy MP vs MP with least-squares refinement",
        )
    )
    # the refinement never hurts and measurably helps on correlated supports
    assert refined_error <= greedy_error
    assert refined_error < 0.95 * greedy_error


def test_bench_mp_ls_runtime(benchmark, aquamodem_matrices, noisy_receive_vector):
    result = benchmark(
        matching_pursuit_ls, noisy_receive_vector, aquamodem_matrices, num_paths=6
    )
    assert result.num_paths == 6
    # still far inside the 22.4 ms real-time budget
    assert benchmark.stats.stats.mean < 22.4e-3
