"""Experiment E2 — regenerate the Figure 4 Walsh/m-sequence composite waveforms.

The paper's Figure 4 shows the 8-symbol x 7-chip (56-chip) waveform; the shape
checks are orthogonality of the alphabet, the chip/sample counts of Table 1
and the constant envelope of the DS-SS waveform.
"""

from __future__ import annotations

from repro.analysis.figure4 import reproduce_figure4


def test_bench_figure4_waveform(benchmark):
    waveforms = benchmark(reproduce_figure4)
    print()
    print(
        f"Figure 4: {waveforms.num_waveforms} composite waveforms, "
        f"{waveforms.chips_per_waveform} chips ({waveforms.samples_per_waveform} samples) each; "
        f"orthogonal={waveforms.orthogonal}, constant envelope={waveforms.constant_envelope}"
    )
    assert waveforms.num_waveforms == 8
    assert waveforms.chips_per_waveform == 56
    assert waveforms.samples_per_waveform == 112
    assert waveforms.orthogonal
    assert waveforms.constant_envelope
