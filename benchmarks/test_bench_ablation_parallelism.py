"""Experiment E8 (ablation) — the parallelism trade-off over the full divisor set.

The paper evaluates three parallelism levels (1, 14, 112 FC blocks); this
ablation sweeps every divisor of 112 on both devices at 8 bits, confirming the
monotone area/power-up, energy-down trend, the Spartan-3 feasibility cutoff at
28 blocks (DSP48 limit), and that the Pareto frontier spans serial (smallest)
to fully parallel (lowest energy).
"""

from __future__ import annotations

from repro.analysis.ablations import parallelism_ablation
from repro.core.dse import DesignSpaceExplorer, divisors
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.utils.tables import format_table


def _run_sweep():
    return {
        "Virtex-4": parallelism_ablation(device=VIRTEX4_XC4VSX55, word_length=8),
        "Spartan-3": parallelism_ablation(device=SPARTAN3_XC3S5000, word_length=8),
    }


def test_bench_ablation_parallelism(benchmark):
    sweeps = benchmark(_run_sweep)
    print()
    for family, evaluations in sweeps.items():
        print(
            format_table(
                ["#FC", "feasible", "slices", "time us", "power W", "energy uJ"],
                [
                    (e.point.num_fc_blocks, e.feasible, e.slices, e.time_us, e.power_w, e.energy_uj)
                    for e in evaluations
                ],
                title=f"E8 — parallelism sweep on {family} (8-bit)",
            )
        )
        print()

    assert [e.point.num_fc_blocks for e in sweeps["Virtex-4"]] == divisors(112)

    for family, evaluations in sweeps.items():
        feasible = [e for e in evaluations if e.feasible]
        energies = [e.energy_uj for e in feasible]
        slices = [e.slices for e in feasible]
        powers = [e.power_w for e in feasible]
        assert energies == sorted(energies, reverse=True), f"{family}: energy must fall"
        assert slices == sorted(slices), f"{family}: area must grow"
        assert powers == sorted(powers), f"{family}: power must grow"

    # Spartan-3 feasibility cutoff: 2 DSP48 per block, 104 available -> 28 blocks max
    spartan_feasibility = {e.point.num_fc_blocks: e.feasible for e in sweeps["Spartan-3"]}
    assert spartan_feasibility[28] and not spartan_feasibility[56]
    # Virtex-4 can host every level
    assert all(e.feasible for e in sweeps["Virtex-4"])

    # the Pareto frontier (area vs energy) runs from the serial to the most parallel design
    explorer = DesignSpaceExplorer(
        devices=(VIRTEX4_XC4VSX55,), parallelism_levels=tuple(divisors(112)), bit_widths=(8,)
    )
    front = explorer.pareto_front()
    front_levels = {e.point.num_fc_blocks for e in front}
    assert 1 in front_levels and 112 in front_levels
