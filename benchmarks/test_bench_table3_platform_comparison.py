"""Experiment E5 — regenerate Table 3 (MicroBlaze / DSP / FPGA comparison).

The headline numbers of the paper: the fully parallel 8-bit Virtex-4 IP core
reduces energy per channel estimation by ~210x over the MicroBlaze and ~52x
over the TI C6713 DSP.  The benchmark regenerates all six rows, checks every
energy figure within 4 % and every ratio within 6 %, and asserts the paper's
qualitative conclusions.
"""

from __future__ import annotations

import pytest

from repro.analysis.table3 import render_table3, reproduce_table3


def test_bench_table3_platform_comparison(benchmark):
    rows = benchmark(reproduce_table3)
    print()
    print(render_table3(rows))

    assert len(rows) == 6
    for row in rows:
        assert row.energy_error < 0.04, f"{row.label}: energy off by {row.energy_error:.2%}"
        assert row.energy_decrease_vs_microcontroller == pytest.approx(
            row.paper_decrease_vs_microcontroller, rel=0.06
        )
        assert row.energy_decrease_vs_dsp == pytest.approx(row.paper_decrease_vs_dsp, rel=0.06)

    by_label = {r.label: r for r in rows}
    headline = by_label["Virtex-4 112FC 8bit"]
    assert headline.energy_decrease_vs_microcontroller == pytest.approx(210.57, rel=0.05)
    assert headline.energy_decrease_vs_dsp == pytest.approx(52.71, rel=0.05)

    # who wins: every FPGA design beats both processors, the parallel designs
    # beat the serial ones, and the fully parallel Virtex-4 wins overall
    for label, row in by_label.items():
        if "FC" in label:
            assert row.energy_decrease_vs_microcontroller > 1.0
            assert row.energy_decrease_vs_dsp > 1.0
    assert headline.energy_uj == min(r.energy_uj for r in rows)
    assert by_label["MicroBlaze 32bit"].energy_uj == max(r.energy_uj for r in rows)
    # the serial FPGA designs are only modestly better than the DSP (1.4x / 1.9x)
    assert 1.0 < by_label["Virtex-4 1FC 16bit"].energy_decrease_vs_dsp < 2.0
    assert 1.0 < by_label["Spartan-3 1FC 16bit"].energy_decrease_vs_dsp < 2.5
