"""Benchmark — batched fixed-point MP engine vs the scalar sweep (E6).

Runs the full bitwidth ablation (the paper's six word lengths, 48 paired
Monte-Carlo channels each) through the scalar per-trial sweep and through
:class:`repro.core.batch.BatchFixedPointMPEngine` at equal trial counts and
records the speed-up.  The engine draws the identical RNG streams and its
datapath is pinned bit-identical on raw integer codes, so besides being
faster it returns *identical* results — which this benchmark also asserts,
both at the aggregated-ablation level and record by record against
``run_sweep``, making it an end-to-end equivalence check at benchmark scale.

The hard gate is >= 5x (the ISSUE 4 acceptance threshold); on this
repository's CI-class single-core container the engine typically measures
6-8x — the scalar path pays dozens of small NumPy calls per trial while the
batched datapath re-quantises whole trial stacks at once, and the remaining
floor is the per-trial metric evaluation both paths share.  The measured
ratio is stored in ``extra_info`` (and the benchmark JSON artifact in CI,
where ``benchmarks/compare.py`` tracks regressions against the previous
run).
"""

from __future__ import annotations

import time

from repro.analysis.ablations import bitwidth_accuracy_ablation
from repro.core.batch import BatchFixedPointMPEngine
from repro.experiments import get_scenario, run_sweep
from repro.utils.tables import format_table

WORD_LENGTHS = (4, 6, 8, 10, 12, 16)
TRIALS = 48
ROUNDS = 3
MIN_SPEEDUP = 5.0


def _ablation(batch: bool):
    return bitwidth_accuracy_ablation(
        word_lengths=WORD_LENGTHS, num_trials=TRIALS, snr_db=25.0, rng=0, batch=batch
    )


def test_bench_fixedpoint_batch(benchmark):
    # Interleave the engine and scalar measurements round by round so
    # machine-load drift hits both equally; the gate uses the interleaved
    # minima (round 1 also warms the shared memoised channel problems, so
    # neither path is charged for problem generation the other skips).
    times = {True: float("inf"), False: float("inf")}
    results = {}
    for _ in range(ROUNDS):
        for batch in (False, True):
            start = time.perf_counter()
            outcome = _ablation(batch)
            times[batch] = min(times[batch], time.perf_counter() - start)
            results[batch] = outcome

    # result identity at benchmark scale — aggregated ablation results ...
    assert results[True] == results[False], "batched ablation diverged from the sweep"
    # ... and the underlying records, trial for trial, with ==
    spec = (
        get_scenario("fixedpoint-bitwidth").spec
        .with_axis("word_length", WORD_LENGTHS)
        .with_seed(base_seed=0, replicates=TRIALS)
    )
    assert BatchFixedPointMPEngine().run_spec(spec).records == run_sweep(spec).records

    # the recorded pytest-benchmark timing is the batched engine's full sweep
    benchmark.pedantic(lambda: _ablation(True), iterations=1, rounds=1)

    speedup = times[False] / times[True]
    benchmark.extra_info["word_lengths"] = len(WORD_LENGTHS)
    benchmark.extra_info["trials_per_word_length"] = TRIALS
    benchmark.extra_info["scalar_sweep_s"] = round(times[False], 4)
    benchmark.extra_info["batch_s"] = round(times[True], 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print()
    print(
        format_table(
            ["Path", "Time (s)", "Speed-up"],
            [
                ("scalar sweep (reference)", round(times[False], 3), "1.0x"),
                ("batched engine", round(times[True], 3), f"{speedup:.1f}x"),
            ],
            title=(
                f"E6 bitwidth ablation — batched engine vs scalar sweep "
                f"({len(WORD_LENGTHS)} word lengths x {TRIALS} trials)"
            ),
        )
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched bitwidth ablation only {speedup:.2f}x faster (gate: {MIN_SPEEDUP}x)"
    )
