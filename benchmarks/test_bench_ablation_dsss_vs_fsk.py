"""Experiment E7 (ablation) — DS-SS vs FSK symbol error rate in multipath.

Section III motivates the DS-SS waveform by the claim (Freitag et al.,
Proakis) that spread-spectrum signalling yields significantly lower error
rates than FSK in the frequency-selective underwater channel.  The benchmark
runs both schemes over the same random shallow-water multipath channels at a
sweep of SNRs and checks that the DS-SS receiver (matched filter + MP channel
estimate + RAKE) is never worse and is clearly better in the low-SNR regime.
"""

from __future__ import annotations

from repro.analysis.ablations import dsss_vs_fsk_ablation
from repro.utils.tables import format_table

SNR_POINTS_DB = (-9.0, -6.0, -3.0, 0.0, 3.0)


def test_bench_ablation_dsss_vs_fsk(benchmark):
    curves = benchmark.pedantic(
        dsss_vs_fsk_ablation,
        kwargs=dict(snr_points_db=SNR_POINTS_DB, num_symbols=120, rng=0),
        iterations=1,
        rounds=1,
    )
    print()
    rows = []
    for dsss_point, fsk_point in zip(curves["DSSS"], curves["FSK"]):
        rows.append(
            (dsss_point.snr_db, dsss_point.symbol_error_rate, fsk_point.symbol_error_rate)
        )
    print(
        format_table(
            ["SNR (dB)", "DS-SS SER", "FSK SER"],
            rows,
            title="E7 — symbol error rate, DS-SS vs non-coherent FSK (multipath channel)",
        )
    )

    dsss_ser = [r.symbol_error_rate for r in curves["DSSS"]]
    fsk_ser = [r.symbol_error_rate for r in curves["FSK"]]

    # who wins: DS-SS is never worse at any SNR point ...
    assert all(d <= f for d, f in zip(dsss_ser, fsk_ser))
    # ... and the FSK scheme pays a real multipath penalty somewhere in the sweep
    assert max(f - d for d, f in zip(dsss_ser, fsk_ser)) > 0.02
    # the DS-SS link is essentially error free once the per-sample SNR reaches 0 dB
    assert dsss_ser[-2] == 0.0 and dsss_ser[-1] == 0.0
