"""Experiment E12 (ablation) — the two effects the paper mentions but does not
quantify: reconfiguration energy at power-up and the ASIC alternative.

* Figure 6's energy numbers "do not consider the cost of reconfiguration on
  power up".  The ablation charges a full bitstream load per power-up and
  reports how many back-to-back estimations the node must perform before the
  FPGA still beats the DSP / microcontroller on average energy.
* Section VI argues an ASIC would be even more energy efficient but is too
  expensive for a low-cost modem.  The ablation quantifies both the energy
  gap and the production volume at which the ASIC's amortised cost crosses
  below the FPGA's — far beyond the 10s-100s of nodes the paper targets.
"""

from __future__ import annotations

from repro.hardware.asic import ASICImplementation, cost_crossover_volume
from repro.hardware.devices import SPARTAN3_XC3S5000, VIRTEX4_XC4VSX55
from repro.hardware.fpga import FPGAImplementation
from repro.hardware.processors import ProcessorImplementation, microblaze_soft_core, ti_c6713
from repro.hardware.reconfiguration import (
    ReconfigurationModel,
    amortized_energy_per_estimation,
    break_even_estimations,
)
from repro.utils.tables import format_table


def _study():
    best_fpga = FPGAImplementation(VIRTEX4_XC4VSX55, num_fc_blocks=112, word_length=8)
    spartan = FPGAImplementation(SPARTAN3_XC3S5000, num_fc_blocks=14, word_length=8)
    dsp = ProcessorImplementation(ti_c6713())
    microblaze = ProcessorImplementation(microblaze_soft_core())

    reconf_v4 = ReconfigurationModel(VIRTEX4_XC4VSX55)
    reconf_s3 = ReconfigurationModel(SPARTAN3_XC3S5000)
    asic = ASICImplementation(best_fpga)

    return {
        "best_fpga": best_fpga,
        "spartan": spartan,
        "dsp": dsp,
        "microblaze": microblaze,
        "reconf_v4": reconf_v4,
        "reconf_s3": reconf_s3,
        "asic": asic,
    }


def test_bench_ablation_reconfiguration_asic(benchmark):
    study = benchmark(_study)
    best_fpga = study["best_fpga"]
    dsp = study["dsp"]
    microblaze = study["microblaze"]
    reconf_v4 = study["reconf_v4"]
    asic = study["asic"]

    n_vs_dsp = break_even_estimations(
        best_fpga.energy.energy_j, dsp.energy.energy_j, reconf_v4
    )
    n_vs_mb = break_even_estimations(
        best_fpga.energy.energy_j, microblaze.energy.energy_j, reconf_v4
    )

    print()
    print(
        format_table(
            ["Quantity", "Value"],
            [
                ("Virtex-4 bitstream load time (s)", round(reconf_v4.configuration_time_s, 3)),
                ("Virtex-4 reconfiguration energy (J)", round(reconf_v4.configuration_energy_j, 3)),
                ("Spartan-3 reconfiguration energy (J)", round(study["reconf_s3"].configuration_energy_j, 3)),
                ("Estimations/power-up to beat the DSP", n_vs_dsp),
                ("Estimations/power-up to beat the MicroBlaze", n_vs_mb),
                ("FPGA energy/estimation amortised over 1000 (uJ)",
                 round(amortized_energy_per_estimation(best_fpga.energy.energy_j, reconf_v4, 1000) * 1e6, 2)),
                ("ASIC energy per estimation (uJ)", round(asic.energy.energy_uj, 3)),
                ("ASIC vs FPGA energy advantage", f"{best_fpga.energy.energy_uj / asic.energy.energy_uj:.1f}X"),
                ("ASIC/FPGA cost cross-over volume (units)", cost_crossover_volume(asic, 150.0)),
            ],
            title="E12 — reconfiguration overhead and the ASIC alternative",
        )
    )

    # reconfiguration: the FPGA's advantage needs amortisation — a single
    # estimation per power-up would be dominated by the bitstream load ...
    single_shot = amortized_energy_per_estimation(best_fpga.energy.energy_j, reconf_v4, 1)
    assert single_shot > dsp.energy.energy_j
    # ... but a listening burst of ~1k estimations (≈ 20 s of continuous
    # reception) already restores the win over both baselines
    assert 10 < n_vs_mb <= n_vs_dsp < 10_000
    amortised = amortized_energy_per_estimation(best_fpga.energy.energy_j, reconf_v4, 5 * n_vs_dsp)
    assert amortised < dsp.energy.energy_j

    # ASIC: lower energy still, but the cost cross-over sits far beyond the
    # deployment sizes the paper targets (10s-100s of nodes)
    assert asic.energy.energy_uj < best_fpga.energy.energy_uj
    assert cost_crossover_volume(asic, 150.0) > 500
