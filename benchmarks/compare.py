#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files and fail on regressions.

Used by CI: the previous successful run's benchmark artifact is downloaded
(when available) and compared against the current run's JSON; a benchmark
that slowed down by more than ``--max-slowdown`` fails the job.  A missing
or empty baseline passes with a note (first run, renamed benchmark, expired
artifact), so the gate never blocks bootstrap.

Benchmarks that record an in-run relative ``speedup`` in ``extra_info``
(the batched-engine benchmarks measure batch vs reference loop in the same
process) are compared on that ratio instead of absolute wall-clock, so the
gate is robust to CI runner VMs of different speeds across runs; plain
benchmarks fall back to the wall-clock metric.

Usage::

    python benchmarks/compare.py baseline.json current.json \
        --max-slowdown 1.30 [--metric min|mean] [--require NAME ...]

``--require`` marks benchmarks that must exist in the current file (e.g. the
link-batch, network-batch, fixedpoint-batch and ipcore-batch benchmarks),
guarding against a gate that silently compares nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_benchmarks(path: str) -> dict[str, dict] | None:
    """Benchmark stats + extra_info by name, or None when the file is absent/unreadable."""
    file = Path(path)
    if not file.is_file():
        return None
    try:
        payload = json.loads(file.read_text())
    except (OSError, ValueError):
        return None
    return {
        bench["name"]: {
            "stats": bench.get("stats", {}),
            "extra_info": bench.get("extra_info", {}),
        }
        for bench in payload.get("benchmarks", [])
    }


def compare(
    baseline: dict[str, dict],
    current: dict[str, dict],
    metric: str,
    max_slowdown: float,
) -> tuple[list[tuple[str, str, float, float, float]], list[str]]:
    """Per-benchmark (name, basis, baseline, current, ratio) rows plus failures.

    ``ratio > 1`` always means "got worse".  When both sides recorded an
    in-run relative ``speedup`` the ratio is baseline_speedup /
    current_speedup (runner-speed independent); otherwise it is
    current_time / baseline_time on the wall-clock ``metric``.
    """
    rows: list[tuple[str, str, float, float, float]] = []
    failures: list[str] = []
    for name in sorted(set(baseline) & set(current)):
        base_speedup = baseline[name]["extra_info"].get("speedup")
        current_speedup = current[name]["extra_info"].get("speedup")
        if base_speedup and current_speedup:
            basis = "speedup"
            base_value, current_value = base_speedup, current_speedup
            ratio = base_speedup / current_speedup
        else:
            basis = metric
            base_value = baseline[name]["stats"].get(metric)
            current_value = current[name]["stats"].get(metric)
            if not base_value or current_value is None:
                continue
            ratio = current_value / base_value
        rows.append((name, basis, base_value, current_value, ratio))
        if ratio > max_slowdown:
            failures.append(
                f"{name} [{basis}]: {current_value:.4f} vs baseline {base_value:.4f} "
                f"({ratio:.2f}x worse > allowed {max_slowdown:.2f}x)"
            )
    return rows, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="previous run's benchmark JSON")
    parser.add_argument("current", help="this run's benchmark JSON")
    parser.add_argument("--max-slowdown", type=float, default=1.30,
                        help="fail when current/baseline exceeds this (default: 1.30)")
    parser.add_argument("--metric", choices=("min", "mean", "median"), default="min",
                        help="stat to compare (default: min, the least noisy)")
    parser.add_argument("--require", action="append", default=[], metavar="SUBSTRING",
                        help="fail unless a current benchmark name contains this "
                        "substring (repeatable)")
    args = parser.parse_args(argv)

    current = load_benchmarks(args.current)
    if current is None:
        print(f"error: current benchmark file {args.current!r} is missing or unreadable")
        return 2
    missing = [
        required for required in args.require
        if not any(required in name for name in current)
    ]
    if missing:
        print(f"error: required benchmarks not found in {args.current!r}: {missing}")
        print(f"       present: {sorted(current)}")
        return 2

    baseline = load_benchmarks(args.baseline)
    if baseline is None:
        print(f"no baseline at {args.baseline!r} — first run or expired artifact; "
              "nothing to compare, passing")
        return 0
    rows, failures = compare(baseline, current, args.metric, args.max_slowdown)
    if not rows:
        print("no common benchmarks between baseline and current — passing")
        return 0
    width = max(len(name) for name, *_ in rows)
    print(f"{'benchmark':<{width}}  basis    baseline   current  worse-by")
    for name, basis, base_value, current_value, ratio in rows:
        marker = "  << REGRESSION" if ratio > args.max_slowdown else ""
        print(
            f"{name:<{width}}  {basis:<7}  {base_value:8.4f}  {current_value:8.4f}"
            f"  {ratio:5.2f}x{marker}"
        )
    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"\nall {len(rows)} benchmarks within {args.max_slowdown:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
