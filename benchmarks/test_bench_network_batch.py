"""Benchmark — batched network-lifetime engine vs the per-packet event loop (E9).

Runs a platform lifetime sweep (two Table 3 extremes, several jittered
traffic seeds each) through both the event loop and the batched engine at
equal trial counts and records the speed-up.  The batched engine consumes an
identical RNG stream and evaluates the same closed-form accounting, so
besides being faster it returns *identical* results — which this benchmark
also asserts, making it an end-to-end equivalence check at benchmark scale.

The hard gate is >= 5x (the ISSUE 3 acceptance threshold); on this workload
the batched engine typically measures 10-20x even on a loaded single-core
runner, since the event loop prices ~10^4 packet hops per trial in Python
while the batch engine replays only each trial's single death event.  The
measured ratio is stored in ``extra_info`` (and the benchmark JSON artifact
in CI, where ``benchmarks/compare.py`` tracks regressions against the
previous run).
"""

from __future__ import annotations

import time

from repro.modem.energy_budget import ModemEnergyBudget
from repro.network.batch import simulate_network_trials
from repro.network.topology import grid_deployment
from repro.network.traffic import PeriodicTraffic
from repro.utils.tables import format_table

PLATFORMS = {"MicroBlaze": 2000.40, "Virtex-4 112FC 8bit": 9.50}
SEEDS = [0, 1, 2]
ROUNDS = 2
MIN_SPEEDUP = 5.0


def _sweep(batch: bool, energy_uj: float):
    budget = ModemEnergyBudget(
        transmit_power_w=2.0,
        receive_frontend_power_w=0.05,
        processing_energy_per_estimation_j=energy_uj * 1e-6,
        # continuous detection: one estimation per 22.4 ms receive window
        processing_idle_power_w=0.01 + energy_uj * 1e-6 / 22.4e-3,
    )
    return simulate_network_trials(
        grid_deployment(5, 5, spacing_m=200.0),
        budget,
        traffic=PeriodicTraffic(report_interval_s=60.0, packet_symbols=32,
                                jitter_fraction=0.1),
        communication_range_m=300.0,
        battery_capacity_j=8_000.0,
        seeds=SEEDS,
        max_time_s=30.0 * 86_400.0,
        batch=batch,
    )


def _signature(results):
    return [
        (r.first_death_time_s, r.packets_generated, r.packets_delivered,
         tuple(sorted(r.node_alive.items())))
        for r in results
    ]


def test_bench_network_batch(benchmark):
    # Interleave every (platform, engine) measurement round by round so
    # machine-load drift hits all of them equally — the asserted gate uses
    # these interleaved timings.
    keys = [(name, batch) for name in PLATFORMS for batch in (False, True)]
    times = {key: float("inf") for key in keys}
    results = {}
    for _ in range(ROUNDS):
        for name, batch in keys:
            start = time.perf_counter()
            outcome = _sweep(batch, PLATFORMS[name])
            times[(name, batch)] = min(times[(name, batch)], time.perf_counter() - start)
            results[(name, batch)] = outcome

    # seed-locked equivalence at benchmark scale: identical trial outcomes
    for name in PLATFORMS:
        assert _signature(results[(name, True)]) == _signature(results[(name, False)]), (
            f"{name} results diverged from the event loop"
        )
        assert all(r.first_death_time_s is not None for r in results[(name, True)])

    # the recorded pytest-benchmark timing is the batched engine's full sweep
    benchmark.pedantic(
        lambda: [_sweep(True, energy) for energy in PLATFORMS.values()],
        iterations=1,
        rounds=1,
    )

    event_total = sum(times[(name, False)] for name in PLATFORMS)
    batch_total = sum(times[(name, True)] for name in PLATFORMS)
    speedup = event_total / batch_total
    benchmark.extra_info["trials_per_platform"] = len(SEEDS)
    benchmark.extra_info["platforms"] = len(PLATFORMS)
    benchmark.extra_info["event_loop_s"] = round(event_total, 4)
    benchmark.extra_info["batch_s"] = round(batch_total, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    print()
    print(
        format_table(
            ["Platform", "Event loop (s)", "Batched (s)", "Speed-up"],
            [
                (
                    name,
                    round(times[(name, False)], 3),
                    round(times[(name, True)], 3),
                    f"{times[(name, False)] / times[(name, True)]:.1f}x",
                )
                for name in PLATFORMS
            ]
            + [("lifetime sweep (total)", round(event_total, 3), round(batch_total, 3),
                f"{speedup:.1f}x")],
            title=(
                f"E9 lifetime sweep — batched engine vs event loop "
                f"(25 nodes, {len(SEEDS)} jittered trials x {len(PLATFORMS)} platforms)"
            ),
        )
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched lifetime sweep only {speedup:.2f}x faster (gate: {MIN_SPEEDUP}x)"
    )
