"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4) and prints a paper-vs-measured comparison; run with

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ablations import aquamodem_signal_matrices
from repro.dsp.signal_matrix import SignalMatrices


@pytest.fixture(scope="session")
def aquamodem_matrices() -> SignalMatrices:
    """The full 224 x 112 AquaModem signal matrices (built once per session)."""
    return aquamodem_signal_matrices()


@pytest.fixture(scope="session")
def noisy_receive_vector(aquamodem_matrices) -> np.ndarray:
    """A representative noisy receive vector over a 4-path channel."""
    from repro.channel.multipath import random_sparse_channel
    from repro.channel.simulator import add_noise_for_snr

    channel = random_sparse_channel(num_paths=4, max_delay=100, rng=2024, min_separation=6)
    clean = aquamodem_matrices.synthesize(channel.coefficient_vector(112))
    return add_noise_for_snr(clean, 20.0, rng=2025)
