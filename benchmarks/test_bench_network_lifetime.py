"""Experiment E9 (extension) — sensor-network deployment lifetime by platform.

The paper's introduction motivates the energy comparison with deployment
lifetime of small, dense underwater sensor networks.  This benchmark carries
the Table 3 per-estimation energies into a 25-node network whose receivers run
continuous channel-estimation while listening, and reports the resulting
deployment lifetime (first node death) per hardware platform — the ordering
must follow the paper's energy ranking, with the fully parallel FPGA core
giving the longest deployment.
"""

from __future__ import annotations

from repro.analysis.ablations import network_lifetime_study
from repro.utils.tables import format_table


def _study():
    return network_lifetime_study(
        grid_size=(5, 5),
        spacing_m=200.0,
        communication_range_m=300.0,
        battery_capacity_j=200_000.0,   # a D-cell class lithium pack
        report_interval_s=120.0,
        packet_symbols=32,
    )


def test_bench_network_lifetime(benchmark):
    lifetimes = benchmark(_study)
    print()
    print(
        format_table(
            ["Platform", "Deployment lifetime (days)"],
            sorted(lifetimes.items(), key=lambda kv: kv[1]),
            title="E9 — 25-node deployment lifetime by signal-processing platform",
        )
    )

    # ordering follows the paper's per-estimation energy ranking
    assert (
        lifetimes["Virtex-4 112FC 8bit"]
        >= lifetimes["Spartan-3 14FC 8bit"]
        >= lifetimes["Virtex-4 1FC 16bit"]
        >= lifetimes["TI C6713 DSP"]
        >= lifetimes["MicroBlaze"]
    )
    # the FPGA platform buys a material lifetime extension over the microcontroller
    assert lifetimes["Virtex-4 112FC 8bit"] > 1.3 * lifetimes["MicroBlaze"]
    # and all lifetimes are physically sensible (days to months, not seconds)
    assert all(1.0 < days < 365.0 for days in lifetimes.values())
