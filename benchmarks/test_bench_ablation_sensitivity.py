"""Experiment E11 (ablation) — sensitivity of the headline ratios to calibration.

The reproduction replaces the paper's measurement tool chain with calibrated
analytical models; this ablation perturbs each fitted constant by ±20 % and
checks that the paper's conclusion — a two-orders-of-magnitude energy
advantage over the microcontroller and tens of times over the DSP for the
fully parallel 8-bit Virtex-4 core — does not hinge on any single constant.
"""

from __future__ import annotations

from repro.analysis.sensitivity import PERTURBABLE_PARAMETERS, headline_sensitivity
from repro.utils.tables import format_table


def _sweep():
    points = []
    for parameter in PERTURBABLE_PARAMETERS:
        for change in (-0.2, 0.0, 0.2):
            points.append(headline_sensitivity(parameter, change))
    return points


def test_bench_ablation_sensitivity(benchmark):
    points = benchmark(_sweep)
    print()
    print(
        format_table(
            ["Parameter", "Change", "vs MicroBlaze", "vs DSP", "FPGA energy (uJ)"],
            [
                (p.parameter, f"{p.relative_change:+.0%}",
                 round(p.energy_decrease_vs_microcontroller, 1),
                 round(p.energy_decrease_vs_dsp, 1),
                 round(p.fpga_energy_uj, 2))
                for p in points
            ],
            title="E11 — headline-ratio sensitivity to ±20% calibration error",
        )
    )

    baseline = next(p for p in points if p.relative_change == 0.0)
    assert baseline.energy_decrease_vs_microcontroller > 200.0
    assert baseline.energy_decrease_vs_dsp > 50.0
    # the conclusion survives every single-constant perturbation
    for p in points:
        assert p.energy_decrease_vs_microcontroller > 100.0, p
        assert p.energy_decrease_vs_dsp > 25.0, p
    # and the spread stays within a factor ~1.5 of the baseline
    ratios = [p.energy_decrease_vs_dsp for p in points]
    assert max(ratios) / min(ratios) < 2.5
