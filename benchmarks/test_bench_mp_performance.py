"""Experiment E10 — performance of the library's own Matching Pursuits kernels.

Not a paper artefact: this benchmark tracks the runtime of the vectorised MP
implementation (the production code path used by the modem receiver and the
Monte-Carlo link simulations) on the AquaModem geometry, plus the IP-core
functional simulator, and checks the vectorised kernel stays comfortably
real-time (the 22.4 ms receive-vector period) even in pure Python/NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.core.ipcore import IPCoreConfig, IPCoreSimulator
from repro.core.matching_pursuit import matching_pursuit


def test_bench_matching_pursuit_vectorized(benchmark, aquamodem_matrices, noisy_receive_vector):
    result = benchmark(
        matching_pursuit, noisy_receive_vector, aquamodem_matrices, num_paths=6
    )
    assert result.num_paths == 6
    # the software reference itself meets the modem's real-time budget
    assert benchmark.stats.stats.mean < 22.4e-3


def test_bench_matching_pursuit_more_paths(benchmark, aquamodem_matrices, noisy_receive_vector):
    result = benchmark(
        matching_pursuit, noisy_receive_vector, aquamodem_matrices, num_paths=12
    )
    assert result.num_paths == 12


def test_bench_ipcore_functional_simulation(benchmark, aquamodem_matrices, noisy_receive_vector):
    core = IPCoreSimulator(
        aquamodem_matrices, IPCoreConfig(num_fc_blocks=14, word_length=8, num_paths=6)
    )
    run = benchmark(core.estimate, noisy_receive_vector)
    assert run.total_cycles == 1984
    # the quantised core is pinned == (raw integer codes) to the fixed-point
    # reference estimator; against the float reference the four dominant
    # (true-channel) picks must agree, while the trailing noise-driven picks
    # may legitimately differ at 8 bits
    from repro.core.fixedpoint_mp import FixedPointMatchingPursuit

    fixed_point = FixedPointMatchingPursuit(aquamodem_matrices, word_length=8, num_paths=6)
    assert run.result == fixed_point.estimate(noisy_receive_vector)
    reference = matching_pursuit(noisy_receive_vector, aquamodem_matrices, num_paths=6)
    np.testing.assert_array_equal(
        np.sort(run.result.path_indices[:4]), np.sort(reference.path_indices[:4])
    )
