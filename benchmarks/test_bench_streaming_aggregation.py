"""Streaming aggregation: flat memory over growing result files.

The point of the segmented/streaming result layer is that analysis memory is
O(groups), never O(records).  This benchmark writes JSONL result files of
increasing trial counts, aggregates each with the streaming path
(``iter_jsonl`` + ``group_stats``) and with the materialising path
(``read_jsonl`` + in-memory list), and measures peak allocation via
``tracemalloc``:

* the streaming peak must stay essentially flat as the trial count grows
  8x (asserted: < 2x growth — O(groups), not O(records));
* the materialising peak grows linearly, and the printed table shows the
  widening gap.

It also times the streaming merge-and-aggregate over a multi-segment
``SegmentedResultStore`` — the exact path an adaptive sweep's artefacts take.
"""

from __future__ import annotations

import json
import tracemalloc

from repro.analysis.intervals import group_stats
from repro.experiments.segments import SegmentedResultStore
from repro.experiments.store import iter_jsonl, read_jsonl, write_jsonl
from repro.utils.tables import format_table

SIZES = (2_000, 4_000, 8_000, 16_000)
GROUPS = 8


def _make_records(count):
    for index in range(count):
        yield {
            "scenario": "stream-bench",
            "trial_index": index,
            "replicate": index % (count // GROUPS),
            "seed": 7_000 + index,
            "snr_db": float(index % GROUPS),
            "symbol_error_rate": (index % 97) / 970.0,
        }


def _peak_bytes(func):
    tracemalloc.start()
    try:
        func()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_bench_streaming_aggregation_memory_is_flat(tmp_path):
    paths = {}
    for size in SIZES:
        path = tmp_path / f"results-{size}.jsonl"
        write_jsonl(path, _make_records(size))
        paths[size] = path

    rows = []
    streaming_peaks = {}
    for size, path in paths.items():
        streaming = _peak_bytes(
            lambda path=path: group_stats(
                iter_jsonl(path), by="snr_db", metric="symbol_error_rate"
            )
        )
        materialised = _peak_bytes(
            lambda path=path: group_stats(
                read_jsonl(path), by="snr_db", metric="symbol_error_rate"
            )
        )
        streaming_peaks[size] = streaming
        rows.append((size, f"{streaming / 1024:.0f}", f"{materialised / 1024:.0f}",
                     f"{materialised / streaming:.1f}x"))

    print()
    print(format_table(
        ["Trials", "Streaming peak (KiB)", "Materialised peak (KiB)", "Ratio"],
        rows,
        title="group_stats peak allocation: iter_jsonl vs read_jsonl",
    ))

    # O(groups) memory: an 8x larger file must not move the streaming peak
    # appreciably (2x headroom absorbs allocator/GC noise)
    assert streaming_peaks[SIZES[-1]] < 2 * streaming_peaks[SIZES[0]], (
        f"streaming aggregation peak grew with trial count: {streaming_peaks}"
    )
    # sanity: the streamed answer is the materialised answer
    stats = group_stats(
        iter_jsonl(paths[SIZES[0]]), by="snr_db", metric="symbol_error_rate"
    )
    assert sum(s.count for s in stats.values()) == SIZES[0]


def test_bench_segment_merge_throughput(benchmark, tmp_path):
    count = 16_000
    store = SegmentedResultStore(tmp_path, flush_trials=2_000)
    batch = []
    for record in _make_records(count):
        batch.append(record)
        if len(batch) == 2_000:
            store.append(batch)
            batch.clear()

    def merge_and_aggregate():
        store.merge(spec={"scenario": "stream-bench"}, stats={"num_trials": count})
        return group_stats(
            iter_jsonl(tmp_path / "results.jsonl"),
            by="snr_db", metric="symbol_error_rate",
        )

    stats = benchmark.pedantic(merge_and_aggregate, iterations=1, rounds=3)
    assert sum(s.count for s in stats.values()) == count
    merged = sum(1 for _ in iter_jsonl(tmp_path / "results.jsonl"))
    assert merged == count
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["stats"]["num_trials"] == count
    print()
    print(f"segment merge + streamed aggregation over {count:,} trials "
          f"in {len(store.segments())} segments")
